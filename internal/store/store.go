package store

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// Options configures Open.
type Options struct {
	// ReadOnly opens the store for querying only: Append, DeletePrefix
	// and compaction fail, leftover temp files stay, and a torn segment
	// tail is skipped in memory instead of truncated on disk.
	ReadOnly bool
	// MaxSegmentBytes seals the active segment once it exceeds this many
	// bytes (default 8 MiB).
	MaxSegmentBytes int64
	// CompactSegments, when > 0, starts a background compactor that
	// runs Policy (or the legacy merge-everything pass when Policy is
	// zero) whenever the sealed segment count reaches this threshold.
	// Zero disables background compaction; CompactWith can still be
	// called explicitly.
	CompactSegments int
	// Policy is the compaction policy. Besides steering the background
	// compactor, a non-zero Policy.Partition makes the active segment
	// roll whenever an appended event's time partition differs from the
	// segment's, so every segment holds a single partition's history.
	Policy Policy
	// Sync is the group-commit fsync policy for the append path; the
	// zero value syncs only at seal, explicit Sync and Close.
	Sync SyncPolicy
	// OpenSegment, when non-nil, replaces the os.File operations for
	// the active segment's write handle — the fault-injection seam
	// (internal/faultfs implements it). create=true asks for a fresh
	// exclusive file, create=false reopens an existing segment for
	// appending. Sealed-segment reads and compaction rewrites go
	// through the real filesystem regardless.
	OpenSegment func(path string, create bool) (SegmentFile, error)
	// Instruments, when non-nil, receives write-path telemetry
	// (appends, fsyncs, seals, group-commit batch sizes, compaction
	// passes). Nil keeps the hot path free of even a time.Now call.
	Instruments *Instruments
	// ColdOpen defers decoding sealed segments that carry a fresh
	// ".sum" sidecar summary: open reserves their index ordinals from
	// the sidecar alone and the first query whose filter could touch a
	// cold segment hydrates it (decodes and indexes its records). A
	// missing, corrupt or stale sidecar demotes that segment to the
	// classic full decode — results are byte-identical either way — and
	// a read-write open rewrites it (self-heal). Off by default so
	// existing stores keep their eager-open behavior (and Stats report
	// fully-warm numbers) unless the caller opts in.
	ColdOpen bool
	// Mmap maps segment files read-only for open and hydration scans on
	// platforms that support it, so cold history is paged in by the OS
	// instead of being copied onto the Go heap; unsupported platforms
	// fall back to buffered reads transparently.
	Mmap bool
}

// SegmentFile is the subset of *os.File the store's write path uses;
// Options.OpenSegment injects alternative implementations (fault
// injection, latency) under the real append/seal/sync code paths.
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// SyncPolicy is the group-commit fsync policy for the append path. The
// zero value preserves the classic behavior — records are fsynced only
// when a segment seals, on an explicit Sync, and at Close — which is
// the fastest option, with crash durability entirely in the caller's
// hands. The other knobs bound the loss window: after a crash, at most
// the records appended since the last policy-driven sync are lost, and
// the segment recovers torn-tail clean.
type SyncPolicy struct {
	// EveryN fsyncs once every N appended records (a group commit):
	// the fsync cost amortizes over N events while the crash-loss
	// window stays below N records.
	EveryN int
	// Interval fsyncs at most this long after the first unsynced
	// append — whichever of EveryN and Interval trips first wins. The
	// timer-driven sync's error, if any, surfaces on the next Append
	// or Sync call.
	Interval time.Duration
	// Always fsyncs on every Append call — maximum durability, one
	// fsync per batch.
	Always bool
	// OnClose documents the zero-value behavior explicitly: sync only
	// at seal, Sync and Close. It is implied when every other field is
	// zero.
	OnClose bool
}

// ErrReadOnly is returned by mutating calls on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

// lockName is the writer-lock file enforcing the single-writer
// invariant: a second read-write Open of the same directory fails
// loudly instead of interleaving appends into the same segment. The
// file holds the owning pid; a lock left by a crashed process is
// detected and stolen.
const lockName = "LOCK"

// acquireLock takes the exclusive writer lock for dir, returning the
// lock file's path.
func acquireLock(dir string) (string, error) {
	path := filepath.Join(dir, lockName)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, werr := fmt.Fprintf(f, "%d\n", os.Getpid()); werr != nil {
				f.Close()
				os.Remove(path)
				return "", werr
			}
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return "", cerr
			}
			return path, nil
		}
		if !os.IsExist(err) {
			return "", err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between the create and the read
			}
			return "", rerr
		}
		pid, _ := strconv.Atoi(strings.TrimSpace(string(data)))
		if pid > 0 && processAlive(pid) {
			return "", fmt.Errorf("store: %s is locked by running process %d (stores are single-writer; open read-only instead)", dir, pid)
		}
		// The owner is gone (a crash): steal the stale lock.
		os.Remove(path)
	}
	return "", fmt.Errorf("store: %s: could not acquire writer lock", dir)
}

// processAlive probes a pid with the null signal.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	// EPERM still proves the process exists.
	return err == nil || errors.Is(err, os.ErrPermission)
}

// ErrClosed is returned by calls on a closed store.
var ErrClosed = errors.New("store: closed")

const defaultMaxSegmentBytes = 8 << 20

// noMinStart is the minStartNano sentinel for a segment holding no
// event records yet.
const noMinStart = math.MaxInt64

// Stats describes the store's current shape.
type Stats struct {
	// Events is the number of live (queryable) events held in memory.
	Events int
	// Prefixes is the number of distinct prefixes in the trie.
	Prefixes int
	// Segments is the number of segment files, including the active one.
	Segments int
	// Bytes is the total size of all segment files.
	Bytes int64
	// Tombstones counts the DeletePrefix erasure directives in force.
	Tombstones int
	// PendingErasure counts event records that are dead (tombstoned or
	// superseded) but still physically on disk, awaiting the next
	// compaction of their segment.
	PendingErasure int
	// RecoveredTails counts segments whose tail was torn (crash) and
	// skipped or truncated during open.
	RecoveredTails int
	// Unsynced counts records appended since the last fsync — the
	// group-commit lag a crash right now would lose.
	Unsynced int
	// MinStart and MaxEnd bound the stored events' time span (zero when
	// the store is empty). They can be wider than the live span after
	// deletions.
	MinStart, MaxEnd time.Time
	// SegmentsCold counts sealed segments whose records have not been
	// decoded yet (Options.ColdOpen, sidecar-backed); SegmentsHydrated
	// counts those decoded on demand since open. Prefixes reflects only
	// hydrated events until the store warms up.
	SegmentsCold, SegmentsHydrated int
	// OpenDecodedEvents counts event records open decoded from sealed
	// segments — zero on a pure sidecar cold open, the proof that cold
	// history stayed cold. HydratedEvents counts event records decoded
	// by on-demand hydration since open.
	OpenDecodedEvents, HydratedEvents int
	// MappedBytes is the number of segment bytes currently mmap'd
	// (Options.Mmap); mappings are scoped to open/hydration scans, so a
	// quiescent store reports zero.
	MappedBytes int64
}

// Store is the persistent blackholing event store. See the package
// comment for the design; all methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options
	inst *Instruments // immutable after Open; nil when un-instrumented
	lock string       // writer-lock file path; empty when read-only

	// events holds every indexed event by ordinal (append order); a nil
	// slot is a dead event (tombstoned, or a superseded duplicate
	// dropped by compaction). Mutating slots copies the slice first so
	// snapshots handed out by All stay safe. eventSeg is parallel: the
	// segment whose file holds each ordinal's record.
	events   []*core.Event
	eventSeg []uint64
	live     int

	// tombs are the DeletePrefix directives in force; tombSeg is the
	// segment each tombstone record lives in (compaction re-emits a
	// tombstone when its segment merges).
	tombs   []Tombstone
	tombSeg []uint64

	sealed []segFile   // sealed segments, ascending seq
	active SegmentFile // nil when read-only or closed
	seq    uint64      // active segment sequence number
	size   int64       // active segment size in bytes

	// Group-commit state: records appended since the last fsync, the
	// armed Interval timer (nil when idle), a timer-driven sync failure
	// awaiting surfacing, and whether the active segment is wounded (a
	// failed write or sync) and must be failed over before more appends.
	unsynced    int
	syncTimer   *time.Timer
	asyncErr    error
	writeFailed bool

	// Active segment bookkeeping for partition rolling and erasure
	// tracking: live event count, dead-on-disk record count, earliest
	// event start, and the segment's time partition.
	activeEvents   int
	activeDead     int
	activeMinStart int64
	activePart     int64

	closed bool

	recoveredTails int
	sealedBytes    int64

	// Cold-open bookkeeping: lazy (sidecar-backed, undecoded) sealed
	// segments, cumulative on-demand hydrations, event records open
	// decoded from sealed segments, event records decoded by hydration,
	// segment bytes currently mmap'd, and the last hydration failure
	// (surfaced via Health; the segment stays lazy and retries on the
	// next touching query).
	coldSegs       int
	hydratedSegs   int
	openDecoded    int
	hydratedEvents int
	mappedBytes    int64
	hydrateErr     error

	// Active-segment summary accumulator: every event record appended
	// to the active segment (file order, dead-on-arrival included) and
	// every non-event record payload, so seal can write the segment's
	// sidecar without re-reading the file.
	activeRecs   []*core.Event
	activeOthers [][]byte

	trie        *Trie
	byUser      map[bgp.ASN][]int32
	byProvider  map[core.ProviderRef][]int32
	byCommunity map[bgp.Community][]int32
	byDay       map[int64][]int32 // unix day → events overlapping it
	// days is the materialized per-day aggregate view behind
	// DailyCounts: refcounted distinct providers / users / prefixes per
	// unix day, maintained by index/unindex so /figure4-style dashboard
	// queries answer in O(days) instead of O(events).
	days     map[int64]*dayAgg
	minStart time.Time
	maxEnd   time.Time

	scratch []byte

	// compactMu serializes whole compactions; s.mu is only held for
	// CompactWith's brief swap phases, never across a merge write.
	compactMu   sync.Mutex
	compactCh   chan struct{}
	compactDone chan struct{}
}

// Open opens (or creates) the event store in dir, replays every segment
// and rebuilds the in-memory indexes. A torn tail on the newest segment
// — the signature of a crash mid-append — is truncated away; torn tails
// on older segments are skipped. Partially written compaction temp
// files are removed, and segments a compaction marker declares
// superseded (a crash between a merge's atomic commit and its cleanup)
// are skipped and deleted instead of double-indexed. A read-write Open
// takes the directory's writer lock; a second concurrent writer fails
// loudly.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	var lock string
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if lock, err = acquireLock(dir); err != nil {
			return nil, err
		}
	}
	s, err := open(dir, opts)
	if err != nil {
		if lock != "" {
			os.Remove(lock)
		}
		return nil, err
	}
	s.lock = lock
	return s, nil
}

func open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:            dir,
		opts:           opts,
		inst:           opts.Instruments,
		trie:           &Trie{},
		byUser:         map[bgp.ASN][]int32{},
		byProvider:     map[core.ProviderRef][]int32{},
		byCommunity:    map[bgp.Community][]int32{},
		byDay:          map[int64][]int32{},
		days:           map[int64]*dayAgg{},
		activeMinStart: noMinStart,
	}
	segs, err := listSegments(dir, opts.ReadOnly)
	if err != nil {
		if opts.ReadOnly && os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: no such store", dir)
		}
		return nil, err
	}

	// Sidecar summaries: structurally validate (magic, CRC, version,
	// matching seq, segment file size unchanged since write). Orphans
	// and invalid sidecars are removed on a read-write open — the heal
	// pass below rewrites what's worth keeping.
	sidecars, _ := listSidecars(dir)
	bySeq := make(map[uint64]int, len(segs))
	for i, sf := range segs {
		bySeq[sf.seq] = i
	}
	sums := make([]*segSummary, len(segs))
	for seq, path := range sidecars {
		i, ok := bySeq[seq]
		if !ok {
			if !opts.ReadOnly {
				os.Remove(path) // orphan: its segment is gone
			}
			continue
		}
		m, merr := loadSidecar(path)
		if merr == nil && m.seq == seq {
			if fi, serr := os.Stat(segs[i].path); serr == nil && fi.Size() == m.fileSize {
				sums[i] = m
				continue
			}
		}
		if !opts.ReadOnly {
			os.Remove(path)
		}
	}

	// Scan pass. The newest segment is always scanned — it carries the
	// crash-torn tail recovery truncates, and it becomes the active
	// segment. Older segments are scanned only without a valid sidecar
	// (or always, when ColdOpen is off). Scan backings (possibly mmap'd
	// views) are released when open finishes decoding.
	scans := make([]scanResult, len(segs))
	scanned := make([]bool, len(segs))
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	scanAt := func(i int) error {
		sc, done, serr := s.scanSegmentFile(segs[i].path)
		if serr != nil {
			return serr
		}
		releases = append(releases, done)
		scans[i], scanned[i] = sc, true
		return nil
	}
	for i := 0; i < len(segs); {
		last := i == len(segs)-1
		if scanned[i] || (opts.ColdOpen && sums[i] != nil && !last) {
			i++
			continue
		}
		if err := scanAt(i); err != nil {
			// A crash between a segment's creation and its first sync
			// can leave the newest file without a complete magic; treat
			// it like a torn tail, not corruption.
			if errors.Is(err, errNotSegment) && last {
				if !opts.ReadOnly {
					if rerr := os.Remove(segs[i].path); rerr != nil {
						return nil, rerr
					}
					os.Remove(sumPath(dir, segs[i].seq))
				}
				segs, scans, scanned, sums = segs[:i], scans[:i], scanned[:i], sums[:i]
				s.recoveredTails++
				if i > 0 {
					// The previous segment is the new newest: it must be
					// scanned too, even if a sidecar would have covered it.
					i = len(segs) - 1
				}
				continue
			}
			return nil, err
		}
		i++
	}

	// recsOf yields a segment's record payloads without forcing a scan:
	// a lazy segment's sidecar carries its non-event records (markers,
	// tombstones) verbatim, which is all the passes below need.
	recsOf := func(i int) [][]byte {
		if scanned[i] {
			return scans[i].records
		}
		return sums[i].others
	}

	// Honour compaction markers: a v1 marker in segment S supersedes
	// every lower-seq segment; a v2 marker supersedes exactly the seqs
	// it lists. Superseded segments are leftovers of a crash between a
	// merge's atomic commit and its cleanup — indexing them would
	// double-count every event they hold.
	superseded := map[uint64]bool{}
	for i := range segs {
		for _, rec := range recsOf(i) {
			switch {
			case isMarkerV1(rec):
				for j := range segs {
					if segs[j].seq < segs[i].seq {
						superseded[segs[j].seq] = true
					}
				}
			case isMarkerV2(rec):
				listed, merr := markerV2Seqs(rec)
				if merr != nil {
					return nil, fmt.Errorf("store: %s: %w", segs[i].path, merr)
				}
				for _, q := range listed {
					// A marker can only speak for segments older than
					// itself; anything else is corruption — ignore it
					// rather than delete live data.
					if q < segs[i].seq {
						superseded[q] = true
					}
				}
			}
		}
	}
	if len(superseded) > 0 {
		keptSegs, keptScans := segs[:0:0], scans[:0:0]
		keptScanned, keptSums := scanned[:0:0], sums[:0:0]
		for i, sf := range segs {
			if superseded[sf.seq] {
				if !opts.ReadOnly {
					if err := os.Remove(sf.path); err != nil {
						return nil, err
					}
					os.Remove(sumPath(dir, sf.seq))
				}
				continue
			}
			keptSegs = append(keptSegs, sf)
			keptScans = append(keptScans, scans[i])
			keptScanned = append(keptScanned, scanned[i])
			keptSums = append(keptSums, sums[i])
		}
		segs, scans, scanned, sums = keptSegs, keptScans, keptScanned, keptSums
	}

	// Tombstones from every kept segment — scanned records or sidecar
	// copies — are collected before any event is indexed or reserved:
	// their time-based semantics are independent of replay order. The
	// raw payloads double as the staleness oracle below.
	var tombPayloads [][]byte
	for i, sf := range segs {
		for _, rec := range recsOf(i) {
			if !isTombstone(rec) {
				continue
			}
			tb, terr := decodeTombstone(rec)
			if terr != nil {
				return nil, fmt.Errorf("store: %s: %w", sf.path, terr)
			}
			s.tombs = append(s.tombs, tb)
			s.tombSeg = append(s.tombSeg, sf.seq)
			tombPayloads = append(tombPayloads, slices.Clone(rec))
		}
	}

	// Staleness: the tombstone set only grows, so a sidecar is stale
	// exactly when a tombstone outside its recorded applied set could
	// kill one of its live events — its liveness counts can't be
	// trusted. Demote such segments to a full decode now; the heal pass
	// rewrites their sidecars.
	for i := range segs {
		if sums[i] == nil || scanned[i] {
			continue
		}
		applied := make(map[string]bool, len(sums[i].applied))
		for _, p := range sums[i].applied {
			applied[string(p)] = true
		}
		for j, p := range tombPayloads {
			if !applied[string(p)] && sums[i].tombMayAffect(s.tombs[j]) {
				if err := scanAt(i); err != nil {
					return nil, err
				}
				sums[i] = nil
				break
			}
		}
	}

	// Build pass, ascending seq. Scanned segments decode and index
	// their tombstone survivors; lazy segments reserve a contiguous
	// ordinal block straight from the sidecar. Ordinals land in the
	// same (segment, record) order either way, so query results sort
	// identically on a cold and a warm store.
	type healSeg struct {
		i    int
		recs []sumRec
	}
	var heals []healSeg
	var lastEvs []*core.Event
	fallbacks := 0
	for i := range segs {
		lastIdx := i == len(segs)-1
		if scanned[i] {
			if !lastIdx && sums[i] == nil {
				fallbacks++
			}
			segs[i].minStartNano = noMinStart
			var evs []*core.Event
			for _, rec := range scans[i].records {
				if isMarker(rec) || isTombstone(rec) {
					continue
				}
				ev, derr := DecodeEvent(rec)
				if derr != nil {
					return nil, fmt.Errorf("store: %s: %w", segs[i].path, derr)
				}
				evs = append(evs, ev)
				segs[i].hasEvents = true
				if nano := ev.Start.UTC().UnixNano(); nano < segs[i].minStartNano {
					segs[i].minStartNano = nano
				}
				if !lastIdx {
					s.openDecoded++
				}
			}
			heal := !lastIdx && !opts.ReadOnly && sums[i] == nil
			var recs []sumRec
			if heal {
				recs = make([]sumRec, 0, len(evs))
			}
			for _, ev := range evs {
				dead := s.tombstoned(ev)
				if dead {
					segs[i].dead++
				} else {
					s.index(ev, segs[i].seq)
				}
				if heal {
					recs = append(recs, sumRec{ev: ev, dead: dead})
				}
			}
			segs[i].size = scans[i].validLen
			if scans[i].truncated {
				s.recoveredTails++
				if !opts.ReadOnly && lastIdx {
					// Crash tore the newest segment's tail: truncate so new
					// appends start at a clean record boundary.
					if err := os.Truncate(segs[i].path, scans[i].validLen); err != nil {
						return nil, err
					}
				}
			}
			if heal {
				heals = append(heals, healSeg{i: i, recs: recs})
			}
			if lastIdx {
				lastEvs = evs
			}
			continue
		}
		// Lazy: trust the sidecar, decode nothing.
		m := sums[i]
		segs[i].size = m.validLen
		segs[i].minStartNano = noMinStart
		if m.eventRecords > 0 {
			segs[i].minStartNano = m.allMinStart
		}
		segs[i].hasEvents = m.eventRecords > 0
		segs[i].dead = m.eventRecords - m.liveCount
		if m.truncated {
			s.recoveredTails++
		}
		if m.liveCount > 0 {
			segs[i].lazy = true
			segs[i].sum = m
			segs[i].base = int32(len(s.events))
			segs[i].n = int32(m.liveCount)
			for k := 0; k < m.liveCount; k++ {
				s.events = append(s.events, nil)
				s.eventSeg = append(s.eventSeg, segs[i].seq)
			}
			s.live += m.liveCount
			s.coldSegs++
			if t := time.Unix(0, m.liveMinStart).UTC(); s.minStart.IsZero() || t.Before(s.minStart) {
				s.minStart = t
			}
			if t := time.Unix(0, m.liveMaxEnd).UTC(); t.After(s.maxEnd) {
				s.maxEnd = t
			}
		}
	}
	if in := s.inst; in != nil && in.SidecarFallbacks != nil && fallbacks > 0 {
		in.SidecarFallbacks.Add(uint64(fallbacks))
	}

	// Self-heal: sealed segments the open had to fully decode get a
	// fresh sidecar, so the next open is cold again. Best-effort — a
	// failed write just means another full decode next time.
	healed := 0
	for _, h := range heals {
		fi, statErr := os.Stat(segs[h.i].path)
		if statErr != nil {
			continue
		}
		m := buildSummary(segs[h.i].seq, fi.Size(), scans[h.i].validLen, scans[h.i].truncated,
			h.recs, nonEventPayloads(scans[h.i].records), tombPayloads)
		if writeSidecar(dir, m) == nil {
			healed++
		}
	}
	if in := s.inst; in != nil && in.SidecarWrites != nil && healed > 0 {
		in.SidecarWrites.Add(uint64(healed))
	}

	if opts.ReadOnly {
		s.sealed = segs
		for _, sf := range s.sealed {
			s.sealedBytes += sf.size
		}
		return s, nil
	}

	// Reopen the newest segment for appending, or start the first one.
	// The reopened size is the scan's validLen, not the file size: any
	// torn bytes past it were truncated above (or belong to a garbage
	// tail new appends must not extend).
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := s.openSeg(last.path)
		if err != nil {
			return nil, err
		}
		s.active, s.seq, s.size = f, last.seq, scans[len(scans)-1].validLen
		s.activeDead = last.dead
		s.activeMinStart = last.minStartNano
		if last.hasEvents && opts.Policy.Partition > 0 {
			s.activePart = partitionKey(last.minStartNano, opts.Policy.Partition)
		}
		for _, ev := range lastEvs {
			if !s.tombstoned(ev) {
				s.activeEvents++
			}
		}
		s.activeRecs = lastEvs
		s.activeOthers = nonEventPayloads(scans[len(scans)-1].records)
		s.sealed = segs[:len(segs)-1]
	} else {
		if err := s.startSegment(1); err != nil {
			return nil, err
		}
	}
	for _, sf := range s.sealed {
		s.sealedBytes += sf.size
	}
	if opts.CompactSegments > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	return s, nil
}

// nonEventPayloads copies a scan's marker and tombstone payloads (the
// copies outlive the scan's possibly-mmap'd backing).
func nonEventPayloads(recs [][]byte) [][]byte {
	var out [][]byte
	for _, rec := range recs {
		if isMarker(rec) || isTombstone(rec) {
			out = append(out, slices.Clone(rec))
		}
	}
	return out
}

// scanSegmentFile scans one segment through the configured read seam:
// an mmap'd view under Options.Mmap (the page cache holds the bytes,
// not the Go heap) or a buffered read. The returned release function
// must run only after every record is decoded or copied — records
// alias the backing memory.
func (s *Store) scanSegmentFile(path string) (scanResult, func(), error) {
	if s.opts.Mmap && mmapSupported {
		if data, done, err := mapFile(path); err == nil {
			sc, serr := scanSegment(data, path)
			if serr != nil {
				done()
				return scanResult{}, nil, serr
			}
			n := int64(len(data))
			s.mappedBytes += n
			return sc, func() { s.mappedBytes -= n; done() }, nil
		}
		// Mapping failed (exotic filesystem): fall back to a read.
	}
	sc, err := readSegment(path)
	if err != nil {
		return scanResult{}, nil, err
	}
	return sc, func() {}, nil
}

// startSegment creates segment seq and makes it the active one.
func (s *Store) startSegment(seq uint64) error {
	f, err := s.createSeg(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		return err
	}
	s.active, s.seq, s.size = f, seq, int64(len(segMagic))
	s.activeEvents, s.activeDead, s.activeMinStart, s.activePart = 0, 0, noMinStart, 0
	s.activeRecs, s.activeOthers = nil, nil
	return nil
}

// createSeg creates a fresh segment file with its magic written,
// through Options.OpenSegment when set (the fault-injection seam).
func (s *Store) createSeg(path string) (SegmentFile, error) {
	if s.opts.OpenSegment == nil {
		return createSegment(path)
	}
	f, err := s.opts.OpenSegment(path, true)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// openSeg reopens an existing segment for appending, through
// Options.OpenSegment when set.
func (s *Store) openSeg(path string) (SegmentFile, error) {
	if s.opts.OpenSegment == nil {
		return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	}
	return s.opts.OpenSegment(path, false)
}

// index adds ev to the in-memory state under the next ordinal, recording
// the segment holding its record.
func (s *Store) index(ev *core.Event, seq uint64) {
	ord := int32(len(s.events))
	s.events = append(s.events, ev)
	s.eventSeg = append(s.eventSeg, seq)
	s.live++
	s.trie.Insert(ev.Prefix, ord)
	for u := range ev.Users {
		s.byUser[u] = append(s.byUser[u], ord)
	}
	for pr := range ev.Providers {
		s.byProvider[pr] = append(s.byProvider[pr], ord)
	}
	for c := range ev.Communities {
		s.byCommunity[c] = append(s.byCommunity[c], ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		s.byDay[d] = append(s.byDay[d], ord)
	}
	if s.minStart.IsZero() || ev.Start.Before(s.minStart) {
		s.minStart = ev.Start
	}
	if ev.End.After(s.maxEnd) {
		s.maxEnd = ev.End
	}
	s.dayAdd(ev)
}

// unindex removes ordinal ord from every index and nils its slot,
// returning the segment that still holds its record on disk. The caller
// must hold the write lock and have copy-on-write-cloned s.events if
// snapshots may be live.
func (s *Store) unindex(ord int32) uint64 {
	ev := s.events[ord]
	s.events[ord] = nil
	s.live--
	s.trie.Remove(ev.Prefix, ord)
	for u := range ev.Users {
		removePosting(s.byUser, u, ord)
	}
	for pr := range ev.Providers {
		removePosting(s.byProvider, pr, ord)
	}
	for c := range ev.Communities {
		removePosting(s.byCommunity, c, ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		removePosting(s.byDay, d, ord)
	}
	s.dayRemove(ev)
	return s.eventSeg[ord]
}

// moveOrd relocates the live event at ordinal from to the (empty)
// ordinal to, rewriting every index posting — compaction uses it to put
// a duplicate's survivor at the key's first-appearance position, which
// is where the merged segment writes it. Caller holds the write lock
// with s.events cloned.
func (s *Store) moveOrd(from, to int32) {
	ev := s.events[from]
	s.events[to], s.events[from] = ev, nil
	s.eventSeg[to] = s.eventSeg[from]
	s.trie.Replace(ev.Prefix, from, to)
	for u := range ev.Users {
		replacePosting(s.byUser, u, from, to)
	}
	for pr := range ev.Providers {
		replacePosting(s.byProvider, pr, from, to)
	}
	for c := range ev.Communities {
		replacePosting(s.byCommunity, c, from, to)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		replacePosting(s.byDay, d, from, to)
	}
}

// removePosting drops ord from the postings of k, deleting the key when
// the list empties.
func removePosting[K comparable](m map[K][]int32, k K, ord int32) {
	l := m[k]
	for i, o := range l {
		if o == ord {
			nl := append(l[:i:i], l[i+1:]...)
			if len(nl) == 0 {
				delete(m, k)
			} else {
				m[k] = nl
			}
			return
		}
	}
}

// replacePosting swaps ordinal from for to in the postings of k,
// keeping the list sorted.
func replacePosting[K comparable](m map[K][]int32, k K, from, to int32) {
	l := m[k]
	for i, o := range l {
		if o == from {
			l = append(l[:i:i], l[i+1:]...)
			break
		}
	}
	at, _ := slices.BinarySearch(l, to)
	m[k] = slices.Insert(l, at, to)
}

// tombstoned reports whether any tombstone in force kills ev.
func (s *Store) tombstoned(ev *core.Event) bool {
	for _, tb := range s.tombs {
		if tb.Matches(ev) {
			return true
		}
	}
	return false
}

func unixDay(t time.Time) int64 {
	const day = 24 * 60 * 60
	sec := t.Unix()
	if sec < 0 {
		return (sec - day + 1) / day
	}
	return sec / day
}

// Append persists the events (in order) and indexes them. The write
// lands in the OS page cache; call Sync for durability. An event a
// tombstone in force already covers is written to the log but stays
// invisible (its record is dropped at the next compaction).
func (s *Store) Append(events ...*core.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opts.ReadOnly:
		return ErrReadOnly
	}
	if in := s.inst; in != nil {
		if in.AppendSeconds != nil {
			start := time.Now()
			defer func() { in.AppendSeconds.Observe(time.Since(start).Seconds()) }()
		}
		if in.AppendEvents != nil {
			in.AppendEvents.Add(uint64(len(events)))
		}
	}
	for _, ev := range events {
		// Time-partitioned segments: roll the active segment when the
		// event belongs to a different partition, so merges never have
		// to cross partition boundaries.
		if s.opts.Policy.Partition > 0 {
			pk := partitionKey(ev.Start.UTC().UnixNano(), s.opts.Policy.Partition)
			if s.activeEvents+s.activeDead > 0 && pk != s.activePart {
				if err := s.seal(); err != nil {
					return err
				}
			}
			if s.activeEvents+s.activeDead == 0 {
				s.activePart = pk
			}
		}
		payload := EncodeEvent(s.scratch[:0], ev)
		s.scratch = payload[:0]
		rec := appendRecord(nil, payload)
		if err := s.writeRecord(rec); err != nil {
			return fmt.Errorf("store: append: %w", err)
		}
		if nano := ev.Start.UTC().UnixNano(); nano < s.activeMinStart {
			s.activeMinStart = nano
		}
		s.activeRecs = append(s.activeRecs, ev)
		if s.tombstoned(ev) {
			s.activeDead++ // dead on arrival: logged but invisible
		} else {
			s.index(ev, s.seq)
			s.activeEvents++
		}
		if s.size >= s.opts.MaxSegmentBytes {
			if err := s.seal(); err != nil {
				return err
			}
		}
	}
	return s.maybeGroupCommit()
}

// writeRecord appends one raw record to the active segment, tracking
// size and group-commit lag. A wounded segment (an earlier write or
// fsync failure left its tail in an unknown state) is failed over to a
// fresh segment first, so a torn record can never sit in the middle of
// a record boundary new appends extend.
func (s *Store) writeRecord(rec []byte) error {
	if s.writeFailed {
		if err := s.failoverSeal(); err != nil {
			return fmt.Errorf("segment failover: %w", err)
		}
	}
	if _, err := s.active.Write(rec); err != nil {
		s.writeFailed = true
		return err
	}
	s.size += int64(len(rec))
	s.unsynced++
	return nil
}

// maybeGroupCommit applies Options.Sync after a batch of appended
// records: fsync now when the policy demands it, or arm the Interval
// timer. A pending timer-sync failure surfaces here first. Caller
// holds the write lock.
func (s *Store) maybeGroupCommit() error {
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return fmt.Errorf("store: group commit: %w", err)
	}
	pol := s.opts.Sync
	if pol.Always || (pol.EveryN > 0 && s.unsynced >= pol.EveryN) {
		if err := s.syncActive(); err != nil {
			return fmt.Errorf("store: group commit: %w", err)
		}
		return nil
	}
	if pol.Interval > 0 && s.unsynced > 0 && s.syncTimer == nil {
		s.syncTimer = time.AfterFunc(pol.Interval, s.timedSync)
	}
	return nil
}

// syncActive fsyncs the active segment and resets the group-commit
// lag. Caller holds the write lock.
func (s *Store) syncActive() error {
	if s.active == nil {
		return nil
	}
	s.observeCommitBatch()
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		return err
	}
	s.unsynced = 0
	s.stopSyncTimer()
	return nil
}

func (s *Store) stopSyncTimer() {
	if s.syncTimer != nil {
		s.syncTimer.Stop()
		s.syncTimer = nil
	}
}

// timedSync is the Interval policy's deadline: fsync whatever the
// group commit has accumulated. Its failure is remembered and returned
// by the next Append or Sync (a timer has no caller to report to).
func (s *Store) timedSync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncTimer = nil
	if s.closed || s.active == nil || s.unsynced == 0 {
		return
	}
	s.observeCommitBatch()
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		s.asyncErr = err
		return
	}
	s.unsynced = 0
}

// failoverSeal abandons a wounded active segment: a failed write or
// fsync left bytes past the last known-good record in an unknown
// state, so the file is sealed at its known-good length — recovery
// skips any torn bytes beyond it — and a fresh segment takes over.
// Sync and close on the wounded file are best-effort: its data is
// already at risk, and the point here is a clean record boundary for
// everything appended next.
func (s *Store) failoverSeal() error {
	next, err := s.createSeg(filepath.Join(s.dir, segName(s.seq+1)))
	if err != nil {
		return err
	}
	s.fsync()
	s.finishSeal(next)
	s.writeFailed = false
	if in := s.inst; in != nil && in.Failovers != nil {
		in.Failovers.Inc()
	}
	return nil
}

// DeletePrefix erases the history of a prefix: every stored event whose
// prefix lies inside prefix (including exact matches) and — when upTo
// is non-zero — ended at or before upTo disappears from queries
// immediately, and its bytes are dropped from disk at the next
// compaction of its segment. The tombstone is durable (an appended
// record; call Sync for immediate durability) and stays in force for
// later appends and reopens. Returns the number of events erased now.
func (s *Store) DeletePrefix(prefix netip.Prefix, upTo time.Time) (int, error) {
	if prefix.IsValid() {
		// The covered-walk below only sees hydrated events: pull in any
		// cold segment that could hold victims first, so the erasure
		// count and dead-segment accounting match a warm store's.
		s.ensureHydrated(Filter{Prefix: prefix, Mode: PrefixCovered})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return 0, ErrClosed
	case s.opts.ReadOnly:
		return 0, ErrReadOnly
	case !prefix.IsValid():
		return 0, fmt.Errorf("store: DeletePrefix: invalid prefix")
	}
	tb := Tombstone{Prefix: prefix.Masked()}
	if !upTo.IsZero() {
		tb.UpTo = upTo.UTC()
	}
	payload := encodeTombstone(nil, tb)
	rec := appendRecord(nil, payload)
	if err := s.writeRecord(rec); err != nil {
		return 0, fmt.Errorf("store: delete: %w", err)
	}
	s.activeOthers = append(s.activeOthers, payload)
	s.tombs = append(s.tombs, tb)
	s.tombSeg = append(s.tombSeg, s.seq)

	// Collect doomed ordinals first: unindex mutates the postings the
	// trie matches alias.
	var doomed []int32
	for _, m := range s.trie.Covered(tb.Prefix) {
		for _, ord := range m.Ords {
			if ev := s.events[ord]; ev != nil && (tb.UpTo.IsZero() || !ev.End.After(tb.UpTo)) {
				doomed = append(doomed, ord)
			}
		}
	}
	if len(doomed) > 0 {
		// Copy-on-write: snapshots handed out by All keep the old array.
		s.events = slices.Clone(s.events)
		for _, ord := range doomed {
			seq := s.unindex(ord)
			if seq == s.seq {
				s.activeDead++
				s.activeEvents--
			} else {
				for i := range s.sealed {
					if s.sealed[i].seq == seq {
						s.sealed[i].dead++
						break
					}
				}
			}
		}
	}
	if s.size >= s.opts.MaxSegmentBytes {
		if err := s.seal(); err != nil {
			return len(doomed), err
		}
	}
	return len(doomed), s.maybeGroupCommit()
}

// seal syncs and closes the active segment and starts the next one.
// The replacement segment is created first, so the store keeps a valid
// active segment on every error path. Caller holds the write lock.
func (s *Store) seal() error {
	next, err := s.createSeg(filepath.Join(s.dir, segName(s.seq+1)))
	if err != nil {
		return err
	}
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		next.Close()
		os.Remove(next.Name())
		return err
	}
	// The segment's bytes are durable: summarize it so the next open can
	// skip decoding it. (The failover path writes no sidecar — a wounded
	// segment's tail is unknown; the next open scans and heals it.)
	s.writeSealSidecar()
	s.finishSeal(next)
	return nil
}

// finishSeal retires the active segment — its data is already synced
// (or abandoned, on the failover path) — records it in the sealed set,
// and installs next as the new active segment. Caller holds the write
// lock.
func (s *Store) finishSeal(next SegmentFile) {
	// The old active's data is synced; a close error cannot lose anything.
	s.active.Close()
	s.sealed = append(s.sealed, segFile{
		seq:          s.seq,
		path:         filepath.Join(s.dir, segName(s.seq)),
		size:         s.size,
		minStartNano: s.activeMinStart,
		hasEvents:    s.activeEvents+s.activeDead > 0,
		dead:         s.activeDead,
	})
	s.sealedBytes += s.size
	if in := s.inst; in != nil && in.Seals != nil {
		in.Seals.Inc()
	}
	s.active, s.seq, s.size = next, s.seq+1, int64(len(segMagic))
	s.activeEvents, s.activeDead, s.activeMinStart, s.activePart = 0, 0, noMinStart, 0
	s.activeRecs, s.activeOthers = nil, nil
	s.unsynced = 0
	s.stopSyncTimer()
	if s.compactCh != nil && len(s.sealed) >= s.opts.CompactSegments {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
}

// Sync flushes the active segment to stable storage. A deferred
// group-commit failure (an Interval timer fsync that failed) surfaces
// here if no Append reported it first.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return fmt.Errorf("store: group commit: %w", err)
	}
	if s.active == nil {
		return nil
	}
	return s.syncActive()
}

// Close syncs and closes the store. Further calls fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.stopSyncTimer()
	compactDone := s.compactDone
	if s.compactCh != nil {
		close(s.compactCh)
	}
	var err error
	if s.active != nil {
		if serr := s.fsync(); serr != nil {
			err = serr
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	lock := s.lock
	s.lock = ""
	s.mu.Unlock()
	if compactDone != nil {
		<-compactDone
	}
	// Release the writer lock last, after any in-flight compaction has
	// finished touching the directory.
	if lock != "" {
		os.Remove(lock)
	}
	return err
}

// Len returns the number of live events in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Stats snapshots the store's shape.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Events:            s.live,
		Prefixes:          s.trie.Len(),
		Segments:          len(s.sealed),
		Bytes:             s.sealedBytes,
		Tombstones:        len(s.tombs),
		PendingErasure:    s.activeDead,
		Unsynced:          s.unsynced,
		RecoveredTails:    s.recoveredTails,
		MinStart:          s.minStart,
		MaxEnd:            s.maxEnd,
		SegmentsCold:      s.coldSegs,
		SegmentsHydrated:  s.hydratedSegs,
		OpenDecodedEvents: s.openDecoded,
		HydratedEvents:    s.hydratedEvents,
		MappedBytes:       s.mappedBytes,
	}
	for _, sf := range s.sealed {
		st.PendingErasure += sf.dead
	}
	if s.active != nil {
		st.Segments++
		st.Bytes += s.size
	}
	return st
}

// All returns the stored live events in append order, as a snapshot:
// events appended or erased after the call are not reflected. On a
// cold-opened store this warms every remaining lazy segment first — an
// unfiltered walk touches everything by definition.
func (s *Store) All() iter.Seq[*core.Event] {
	s.ensureHydratedAll()
	s.mu.RLock()
	events := s.events[:len(s.events):len(s.events)]
	s.mu.RUnlock()
	return func(yield func(*core.Event) bool) {
		for _, ev := range events {
			if ev == nil {
				continue
			}
			if !yield(ev) {
				return
			}
		}
	}
}

func (s *Store) compactLoop() {
	defer close(s.compactDone)
	pol := s.opts.Policy
	if pol == (Policy{}) {
		pol = Policy{MergeAll: true}
	}
	for range s.compactCh {
		// Best-effort: a failed background compaction leaves the store
		// exactly as it was (no rename happened).
		s.CompactWith(pol)
	}
}

// dupKey identifies records of the same underlying blackholing
// occurrence: the engine serializes events per prefix, so two records
// sharing (prefix, start, start-unknown) are the same event closed
// twice — typically once artificially by an end-of-window flush and
// once, longer, by a later overlapping replay.
type dupKey struct {
	prefix       netip.Prefix
	start        int64
	startUnknown bool
}

func keyOf(ev *core.Event) dupKey {
	return dupKey{ev.Prefix, ev.Start.UTC().UnixNano(), ev.StartUnknown}
}

// supersedes reports whether a replaces b for the same dupKey.
func supersedes(a, b *core.Event) bool {
	if !a.End.Equal(b.End) {
		return a.End.After(b.End)
	}
	return a.Detections >= b.Detections
}
