package store

import (
	"errors"
	"fmt"
	"iter"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// Options configures Open.
type Options struct {
	// ReadOnly opens the store for querying only: Append and Compact
	// fail, leftover temp files stay, and a torn segment tail is skipped
	// in memory instead of truncated on disk.
	ReadOnly bool
	// MaxSegmentBytes seals the active segment once it exceeds this many
	// bytes (default 8 MiB).
	MaxSegmentBytes int64
	// CompactSegments, when > 0, starts a background compactor that
	// merges sealed segments (dropping superseded flush duplicates)
	// whenever their count reaches this threshold. Zero disables
	// background compaction; Compact can still be called explicitly.
	CompactSegments int
}

// ErrReadOnly is returned by mutating calls on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

// lockName is the writer-lock file enforcing the single-writer
// invariant: a second read-write Open of the same directory fails
// loudly instead of interleaving appends into the same segment. The
// file holds the owning pid; a lock left by a crashed process is
// detected and stolen.
const lockName = "LOCK"

// acquireLock takes the exclusive writer lock for dir, returning the
// lock file's path.
func acquireLock(dir string) (string, error) {
	path := filepath.Join(dir, lockName)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, werr := fmt.Fprintf(f, "%d\n", os.Getpid()); werr != nil {
				f.Close()
				os.Remove(path)
				return "", werr
			}
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return "", cerr
			}
			return path, nil
		}
		if !os.IsExist(err) {
			return "", err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between the create and the read
			}
			return "", rerr
		}
		pid, _ := strconv.Atoi(strings.TrimSpace(string(data)))
		if pid > 0 && processAlive(pid) {
			return "", fmt.Errorf("store: %s is locked by running process %d (stores are single-writer; open read-only instead)", dir, pid)
		}
		// The owner is gone (a crash): steal the stale lock.
		os.Remove(path)
	}
	return "", fmt.Errorf("store: %s: could not acquire writer lock", dir)
}

// processAlive probes a pid with the null signal.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	// EPERM still proves the process exists.
	return err == nil || errors.Is(err, os.ErrPermission)
}

// ErrClosed is returned by calls on a closed store.
var ErrClosed = errors.New("store: closed")

const defaultMaxSegmentBytes = 8 << 20

// Stats describes the store's current shape.
type Stats struct {
	// Events is the number of events held (and indexed) in memory.
	Events int
	// Prefixes is the number of distinct prefixes in the trie.
	Prefixes int
	// Segments is the number of segment files, including the active one.
	Segments int
	// Bytes is the total size of all segment files.
	Bytes int64
	// RecoveredTails counts segments whose tail was torn (crash) and
	// skipped or truncated during open.
	RecoveredTails int
	// MinStart and MaxEnd bound the stored events' time span (zero when
	// the store is empty).
	MinStart, MaxEnd time.Time
}

// CompactStats describes one compaction.
type CompactStats struct {
	SegmentsBefore, SegmentsAfter int
	EventsBefore, EventsAfter     int
	// Dropped counts superseded flush duplicates removed: records for
	// the same (prefix, start, start-unknown) key where a longer-ended
	// record supersedes an earlier artificial flush close.
	Dropped int
}

// Store is the persistent blackholing event store. See the package
// comment for the design; all methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options
	lock string // writer-lock file path; empty when read-only

	events []*core.Event // ordinal order = closing/append order
	sealed []segFile     // sealed segments, ascending seq
	active *os.File      // nil when read-only or closed
	seq    uint64        // active segment sequence number
	size   int64         // active segment size in bytes
	closed bool

	recoveredTails int
	sealedBytes    int64

	trie        *Trie
	byUser      map[bgp.ASN][]int32
	byProvider  map[core.ProviderRef][]int32
	byCommunity map[bgp.Community][]int32
	byDay       map[int64][]int32 // unix day → events overlapping it
	minStart    time.Time
	maxEnd      time.Time

	scratch []byte

	// compactMu serializes whole compactions; s.mu is only held for
	// Compact's brief swap phases, never across the merge write.
	compactMu   sync.Mutex
	compactCh   chan struct{}
	compactDone chan struct{}
}

// Open opens (or creates) the event store in dir, replays every segment
// and rebuilds the in-memory indexes. A torn tail on the newest segment
// — the signature of a crash mid-append — is truncated away; torn tails
// on older segments are skipped. Partially written compaction temp
// files are removed. A read-write Open takes the directory's writer
// lock; a second concurrent writer fails loudly.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	var lock string
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if lock, err = acquireLock(dir); err != nil {
			return nil, err
		}
	}
	s, err := open(dir, opts)
	if err != nil {
		if lock != "" {
			os.Remove(lock)
		}
		return nil, err
	}
	s.lock = lock
	return s, nil
}

func open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:         dir,
		opts:        opts,
		trie:        &Trie{},
		byUser:      map[bgp.ASN][]int32{},
		byProvider:  map[core.ProviderRef][]int32{},
		byCommunity: map[bgp.Community][]int32{},
		byDay:       map[int64][]int32{},
	}
	segs, err := listSegments(dir, opts.ReadOnly)
	if err != nil {
		if opts.ReadOnly && os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: no such store", dir)
		}
		return nil, err
	}
	// Scan every segment, then honour the newest compaction marker:
	// segments below it are superseded leftovers of a crash between a
	// compaction's atomic commit and its cleanup, and indexing them
	// would double-count every event they hold.
	scans := make([]scanResult, len(segs))
	for i, sf := range segs {
		if scans[i], err = readSegment(sf.path); err != nil {
			// A crash between a segment's creation and its first sync
			// can leave the newest file without a complete magic; treat
			// it like a torn tail, not corruption.
			if errors.Is(err, errNotSegment) && i == len(segs)-1 {
				if !opts.ReadOnly {
					if rerr := os.Remove(sf.path); rerr != nil {
						return nil, rerr
					}
				}
				segs, scans = segs[:i], scans[:i]
				s.recoveredTails++
				break
			}
			return nil, err
		}
	}
	cut := 0
	for i := range segs {
		if len(scans[i].records) > 0 && isMarker(scans[i].records[0]) {
			cut = i
		}
	}
	if !opts.ReadOnly {
		for i := 0; i < cut; i++ {
			if err := os.Remove(segs[i].path); err != nil {
				return nil, err
			}
		}
	}
	segs, scans = segs[cut:], scans[cut:]

	for i, sf := range segs {
		for _, rec := range scans[i].records {
			if isMarker(rec) {
				continue
			}
			ev, err := DecodeEvent(rec)
			if err != nil {
				return nil, fmt.Errorf("store: %s: %w", sf.path, err)
			}
			s.index(ev)
		}
		if scans[i].truncated {
			s.recoveredTails++
			if !opts.ReadOnly && i == len(segs)-1 {
				// Crash tore the newest segment's tail: truncate so new
				// appends start at a clean record boundary.
				if err := os.Truncate(sf.path, scans[i].validLen); err != nil {
					return nil, err
				}
			}
		}
	}
	if opts.ReadOnly {
		s.sealed = segs
		for _, sf := range s.sealed {
			if fi, err := os.Stat(sf.path); err == nil {
				s.sealedBytes += fi.Size()
			}
		}
		return s, nil
	}

	// Reopen the newest segment for appending, or start the first one.
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		s.active, s.seq, s.size = f, last.seq, fi.Size()
		s.sealed = segs[:len(segs)-1]
	} else {
		if err := s.startSegment(1); err != nil {
			return nil, err
		}
	}
	for _, sf := range s.sealed {
		if fi, err := os.Stat(sf.path); err == nil {
			s.sealedBytes += fi.Size()
		}
	}
	if opts.CompactSegments > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	return s, nil
}

// startSegment creates segment seq and makes it the active one.
func (s *Store) startSegment(seq uint64) error {
	f, err := createSegment(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		return err
	}
	s.active, s.seq, s.size = f, seq, int64(len(segMagic))
	return nil
}

// index adds ev to the in-memory state under the next ordinal.
func (s *Store) index(ev *core.Event) {
	ord := int32(len(s.events))
	s.events = append(s.events, ev)
	s.trie.Insert(ev.Prefix, ord)
	for u := range ev.Users {
		s.byUser[u] = append(s.byUser[u], ord)
	}
	for pr := range ev.Providers {
		s.byProvider[pr] = append(s.byProvider[pr], ord)
	}
	for c := range ev.Communities {
		s.byCommunity[c] = append(s.byCommunity[c], ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		s.byDay[d] = append(s.byDay[d], ord)
	}
	if s.minStart.IsZero() || ev.Start.Before(s.minStart) {
		s.minStart = ev.Start
	}
	if ev.End.After(s.maxEnd) {
		s.maxEnd = ev.End
	}
}

func unixDay(t time.Time) int64 {
	const day = 24 * 60 * 60
	sec := t.Unix()
	if sec < 0 {
		return (sec - day + 1) / day
	}
	return sec / day
}

// Append persists the events (in order) and indexes them. The write
// lands in the OS page cache; call Sync for durability.
func (s *Store) Append(events ...*core.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opts.ReadOnly:
		return ErrReadOnly
	}
	for _, ev := range events {
		payload := EncodeEvent(s.scratch[:0], ev)
		s.scratch = payload[:0]
		rec := appendRecord(nil, payload)
		if _, err := s.active.Write(rec); err != nil {
			return fmt.Errorf("store: append: %w", err)
		}
		s.size += int64(len(rec))
		s.index(ev)
		if s.size >= s.opts.MaxSegmentBytes {
			if err := s.seal(); err != nil {
				return err
			}
		}
	}
	return nil
}

// seal syncs and closes the active segment and starts the next one.
// Caller holds the write lock.
func (s *Store) seal() error {
	if err := s.active.Sync(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.sealed = append(s.sealed, segFile{seq: s.seq, path: filepath.Join(s.dir, segName(s.seq))})
	s.sealedBytes += s.size
	if err := s.startSegment(s.seq + 1); err != nil {
		return err
	}
	if s.compactCh != nil && len(s.sealed) >= s.opts.CompactSegments {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.active == nil {
		return nil
	}
	return s.active.Sync()
}

// Close syncs and closes the store. Further calls fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	compactDone := s.compactDone
	if s.compactCh != nil {
		close(s.compactCh)
	}
	var err error
	if s.active != nil {
		if serr := s.active.Sync(); serr != nil {
			err = serr
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	lock := s.lock
	s.lock = ""
	s.mu.Unlock()
	if compactDone != nil {
		<-compactDone
	}
	// Release the writer lock last, after any in-flight compaction has
	// finished touching the directory.
	if lock != "" {
		os.Remove(lock)
	}
	return err
}

// Len returns the number of events in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// Stats snapshots the store's shape.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Events:         len(s.events),
		Prefixes:       s.trie.Len(),
		Segments:       len(s.sealed),
		Bytes:          s.sealedBytes,
		RecoveredTails: s.recoveredTails,
		MinStart:       s.minStart,
		MaxEnd:         s.maxEnd,
	}
	if s.active != nil {
		st.Segments++
		st.Bytes += s.size
	}
	return st
}

// All returns the stored events in append order, as a snapshot: events
// appended after the call are not included.
func (s *Store) All() iter.Seq[*core.Event] {
	s.mu.RLock()
	events := s.events[:len(s.events):len(s.events)]
	s.mu.RUnlock()
	return func(yield func(*core.Event) bool) {
		for _, ev := range events {
			if !yield(ev) {
				return
			}
		}
	}
}

// ---------------------------------------------------------------------
// Compaction.

func (s *Store) compactLoop() {
	defer close(s.compactDone)
	for range s.compactCh {
		// Best-effort: a failed background compaction leaves the store
		// exactly as it was (the rename never happened).
		s.Compact()
	}
}

// dupKey identifies records of the same underlying blackholing
// occurrence: the engine serializes events per prefix, so two records
// sharing (prefix, start, start-unknown) are the same event closed
// twice — typically once artificially by an end-of-window flush and
// once, longer, by a later overlapping replay.
type dupKey struct {
	prefix       netip.Prefix
	start        int64
	startUnknown bool
}

// Compact merges every segment written so far into one freshly written
// segment, dropping superseded flush duplicates: of the records sharing
// a dupKey, only the one with the latest End (ties: most detections,
// then latest append) survives, at its first appearance's position.
//
// The merged segment opens with a compaction-marker record and is
// committed with an atomic rename before the old segments are removed,
// so a crash at any point leaves a consistent store: either the old
// segment set, or the marker-led merged one (recovery then skips any
// leftover older segments instead of double-indexing them).
//
// The expensive work — re-encoding every event and fsyncing the merged
// segment — runs outside the store lock: the active segment is sealed
// first, so queries keep answering and appends keep landing (in a
// fresh segment the marker does not supersede) throughout.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Phase 1 (locked): decide survivors, and seal the active segment
	// so every event of the snapshot lives below the merged sequence
	// number while concurrent appends land above it.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrClosed
	}
	if s.opts.ReadOnly {
		s.mu.Unlock()
		return CompactStats{}, ErrReadOnly
	}
	stats := CompactStats{
		SegmentsBefore: len(s.sealed) + 1,
		EventsBefore:   len(s.events),
	}
	snapshot := s.events[:len(s.events):len(s.events)]
	best := map[dupKey]int{}
	for i, ev := range snapshot {
		k := dupKey{ev.Prefix, ev.Start.UTC().UnixNano(), ev.StartUnknown}
		j, seen := best[k]
		if !seen || supersedes(ev, snapshot[j]) {
			best[k] = i
		}
	}
	stats.Dropped = len(snapshot) - len(best)
	stats.EventsAfter = len(best)
	if stats.Dropped == 0 && len(s.sealed) == 0 {
		// Single active segment, nothing to drop: no work.
		stats.SegmentsAfter = stats.SegmentsBefore
		s.mu.Unlock()
		return stats, nil
	}

	// Seal: create the replacement active segment first, so on any
	// error the store still holds a valid, open active segment.
	superseded := append([]segFile(nil), s.sealed...)
	superseded = append(superseded, segFile{seq: s.seq, path: filepath.Join(s.dir, segName(s.seq))})
	mergedSeq := s.seq + 1
	mergedPath := filepath.Join(s.dir, segName(mergedSeq))
	newActive, err := createSegment(filepath.Join(s.dir, segName(mergedSeq+1)))
	if err != nil {
		s.mu.Unlock()
		return stats, err
	}
	if err := s.active.Sync(); err != nil {
		newActive.Close()
		os.Remove(newActive.Name())
		s.mu.Unlock()
		return stats, err
	}
	// The old active's data is synced and about to be superseded; a
	// close error cannot lose anything.
	s.active.Close()
	s.sealed = append(s.sealed, superseded[len(superseded)-1])
	s.sealedBytes += s.size
	s.active, s.seq, s.size = newActive, mergedSeq+1, int64(len(segMagic))
	s.mu.Unlock()

	// Phase 2 (unlocked): encode the survivors and commit the merged
	// segment atomically. Queries and appends proceed meanwhile.
	kept := make([]*core.Event, 0, len(best))
	payloads := make([][]byte, 0, len(best)+1)
	payloads = append(payloads, markerPayload)
	emitted := make(map[dupKey]bool, len(best))
	for _, ev := range snapshot {
		k := dupKey{ev.Prefix, ev.Start.UTC().UnixNano(), ev.StartUnknown}
		if emitted[k] {
			continue // the key's survivor went out at its first position
		}
		emitted[k] = true
		survivor := snapshot[best[k]]
		kept = append(kept, survivor)
		payloads = append(payloads, EncodeEvent(nil, survivor))
	}
	if err := writeSegmentAtomic(s.dir, mergedPath, payloads); err != nil {
		// Nothing swapped: the store keeps serving from the old
		// segments, which are all still live.
		return stats, err
	}

	// Phase 3 (locked): swap the superseded segments for the merged
	// one and rebuild the indexes (kept survivors + events appended
	// since the snapshot).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		os.Remove(mergedPath)
		return stats, ErrClosed
	}
	appended := s.events[len(snapshot):]
	s.sealed = append([]segFile{{seq: mergedSeq, path: mergedPath}}, s.sealed[len(superseded):]...)
	s.events = nil
	s.trie = &Trie{}
	s.byUser = map[bgp.ASN][]int32{}
	s.byProvider = map[core.ProviderRef][]int32{}
	s.byCommunity = map[bgp.Community][]int32{}
	s.byDay = map[int64][]int32{}
	s.minStart, s.maxEnd = time.Time{}, time.Time{}
	for _, ev := range kept {
		s.index(ev)
	}
	for _, ev := range appended {
		s.index(ev)
	}
	// Old segment files are harmless once the marker is committed
	// (recovery skips them), so removal is best-effort.
	for _, sf := range superseded {
		os.Remove(sf.path)
	}
	syncDir(s.dir)
	s.sealedBytes = 0
	for _, sf := range s.sealed {
		if fi, err := os.Stat(sf.path); err == nil {
			s.sealedBytes += fi.Size()
		}
	}
	stats.EventsAfter = len(s.events)
	stats.SegmentsAfter = len(s.sealed) + 1
	s.mu.Unlock()
	return stats, nil
}

// supersedes reports whether a replaces b for the same dupKey.
func supersedes(a, b *core.Event) bool {
	if !a.End.Equal(b.End) {
		return a.End.After(b.End)
	}
	return a.Detections >= b.Detections
}
