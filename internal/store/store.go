package store

import (
	"errors"
	"fmt"
	"io"
	"iter"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// Options configures Open.
type Options struct {
	// ReadOnly opens the store for querying only: Append, DeletePrefix
	// and compaction fail, leftover temp files stay, and a torn segment
	// tail is skipped in memory instead of truncated on disk.
	ReadOnly bool
	// MaxSegmentBytes seals the active segment once it exceeds this many
	// bytes (default 8 MiB).
	MaxSegmentBytes int64
	// CompactSegments, when > 0, starts a background compactor that
	// runs Policy (or the legacy merge-everything pass when Policy is
	// zero) whenever the sealed segment count reaches this threshold.
	// Zero disables background compaction; CompactWith can still be
	// called explicitly.
	CompactSegments int
	// Policy is the compaction policy. Besides steering the background
	// compactor, a non-zero Policy.Partition makes the active segment
	// roll whenever an appended event's time partition differs from the
	// segment's, so every segment holds a single partition's history.
	Policy Policy
	// Sync is the group-commit fsync policy for the append path; the
	// zero value syncs only at seal, explicit Sync and Close.
	Sync SyncPolicy
	// OpenSegment, when non-nil, replaces the os.File operations for
	// the active segment's write handle — the fault-injection seam
	// (internal/faultfs implements it). create=true asks for a fresh
	// exclusive file, create=false reopens an existing segment for
	// appending. Sealed-segment reads and compaction rewrites go
	// through the real filesystem regardless.
	OpenSegment func(path string, create bool) (SegmentFile, error)
	// Instruments, when non-nil, receives write-path telemetry
	// (appends, fsyncs, seals, group-commit batch sizes, compaction
	// passes). Nil keeps the hot path free of even a time.Now call.
	Instruments *Instruments
}

// SegmentFile is the subset of *os.File the store's write path uses;
// Options.OpenSegment injects alternative implementations (fault
// injection, latency) under the real append/seal/sync code paths.
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// SyncPolicy is the group-commit fsync policy for the append path. The
// zero value preserves the classic behavior — records are fsynced only
// when a segment seals, on an explicit Sync, and at Close — which is
// the fastest option, with crash durability entirely in the caller's
// hands. The other knobs bound the loss window: after a crash, at most
// the records appended since the last policy-driven sync are lost, and
// the segment recovers torn-tail clean.
type SyncPolicy struct {
	// EveryN fsyncs once every N appended records (a group commit):
	// the fsync cost amortizes over N events while the crash-loss
	// window stays below N records.
	EveryN int
	// Interval fsyncs at most this long after the first unsynced
	// append — whichever of EveryN and Interval trips first wins. The
	// timer-driven sync's error, if any, surfaces on the next Append
	// or Sync call.
	Interval time.Duration
	// Always fsyncs on every Append call — maximum durability, one
	// fsync per batch.
	Always bool
	// OnClose documents the zero-value behavior explicitly: sync only
	// at seal, Sync and Close. It is implied when every other field is
	// zero.
	OnClose bool
}

// ErrReadOnly is returned by mutating calls on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

// lockName is the writer-lock file enforcing the single-writer
// invariant: a second read-write Open of the same directory fails
// loudly instead of interleaving appends into the same segment. The
// file holds the owning pid; a lock left by a crashed process is
// detected and stolen.
const lockName = "LOCK"

// acquireLock takes the exclusive writer lock for dir, returning the
// lock file's path.
func acquireLock(dir string) (string, error) {
	path := filepath.Join(dir, lockName)
	for attempt := 0; attempt < 3; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			if _, werr := fmt.Fprintf(f, "%d\n", os.Getpid()); werr != nil {
				f.Close()
				os.Remove(path)
				return "", werr
			}
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return "", cerr
			}
			return path, nil
		}
		if !os.IsExist(err) {
			return "", err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between the create and the read
			}
			return "", rerr
		}
		pid, _ := strconv.Atoi(strings.TrimSpace(string(data)))
		if pid > 0 && processAlive(pid) {
			return "", fmt.Errorf("store: %s is locked by running process %d (stores are single-writer; open read-only instead)", dir, pid)
		}
		// The owner is gone (a crash): steal the stale lock.
		os.Remove(path)
	}
	return "", fmt.Errorf("store: %s: could not acquire writer lock", dir)
}

// processAlive probes a pid with the null signal.
func processAlive(pid int) bool {
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	// EPERM still proves the process exists.
	return err == nil || errors.Is(err, os.ErrPermission)
}

// ErrClosed is returned by calls on a closed store.
var ErrClosed = errors.New("store: closed")

const defaultMaxSegmentBytes = 8 << 20

// noMinStart is the minStartNano sentinel for a segment holding no
// event records yet.
const noMinStart = math.MaxInt64

// Stats describes the store's current shape.
type Stats struct {
	// Events is the number of live (queryable) events held in memory.
	Events int
	// Prefixes is the number of distinct prefixes in the trie.
	Prefixes int
	// Segments is the number of segment files, including the active one.
	Segments int
	// Bytes is the total size of all segment files.
	Bytes int64
	// Tombstones counts the DeletePrefix erasure directives in force.
	Tombstones int
	// PendingErasure counts event records that are dead (tombstoned or
	// superseded) but still physically on disk, awaiting the next
	// compaction of their segment.
	PendingErasure int
	// RecoveredTails counts segments whose tail was torn (crash) and
	// skipped or truncated during open.
	RecoveredTails int
	// Unsynced counts records appended since the last fsync — the
	// group-commit lag a crash right now would lose.
	Unsynced int
	// MinStart and MaxEnd bound the stored events' time span (zero when
	// the store is empty). They can be wider than the live span after
	// deletions.
	MinStart, MaxEnd time.Time
}

// Store is the persistent blackholing event store. See the package
// comment for the design; all methods are safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options
	inst *Instruments // immutable after Open; nil when un-instrumented
	lock string       // writer-lock file path; empty when read-only

	// events holds every indexed event by ordinal (append order); a nil
	// slot is a dead event (tombstoned, or a superseded duplicate
	// dropped by compaction). Mutating slots copies the slice first so
	// snapshots handed out by All stay safe. eventSeg is parallel: the
	// segment whose file holds each ordinal's record.
	events   []*core.Event
	eventSeg []uint64
	live     int

	// tombs are the DeletePrefix directives in force; tombSeg is the
	// segment each tombstone record lives in (compaction re-emits a
	// tombstone when its segment merges).
	tombs   []Tombstone
	tombSeg []uint64

	sealed []segFile   // sealed segments, ascending seq
	active SegmentFile // nil when read-only or closed
	seq    uint64      // active segment sequence number
	size   int64       // active segment size in bytes

	// Group-commit state: records appended since the last fsync, the
	// armed Interval timer (nil when idle), a timer-driven sync failure
	// awaiting surfacing, and whether the active segment is wounded (a
	// failed write or sync) and must be failed over before more appends.
	unsynced    int
	syncTimer   *time.Timer
	asyncErr    error
	writeFailed bool

	// Active segment bookkeeping for partition rolling and erasure
	// tracking: live event count, dead-on-disk record count, earliest
	// event start, and the segment's time partition.
	activeEvents   int
	activeDead     int
	activeMinStart int64
	activePart     int64

	closed bool

	recoveredTails int
	sealedBytes    int64

	trie        *Trie
	byUser      map[bgp.ASN][]int32
	byProvider  map[core.ProviderRef][]int32
	byCommunity map[bgp.Community][]int32
	byDay       map[int64][]int32 // unix day → events overlapping it
	minStart    time.Time
	maxEnd      time.Time

	scratch []byte

	// compactMu serializes whole compactions; s.mu is only held for
	// CompactWith's brief swap phases, never across a merge write.
	compactMu   sync.Mutex
	compactCh   chan struct{}
	compactDone chan struct{}
}

// Open opens (or creates) the event store in dir, replays every segment
// and rebuilds the in-memory indexes. A torn tail on the newest segment
// — the signature of a crash mid-append — is truncated away; torn tails
// on older segments are skipped. Partially written compaction temp
// files are removed, and segments a compaction marker declares
// superseded (a crash between a merge's atomic commit and its cleanup)
// are skipped and deleted instead of double-indexed. A read-write Open
// takes the directory's writer lock; a second concurrent writer fails
// loudly.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultMaxSegmentBytes
	}
	var lock string
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if lock, err = acquireLock(dir); err != nil {
			return nil, err
		}
	}
	s, err := open(dir, opts)
	if err != nil {
		if lock != "" {
			os.Remove(lock)
		}
		return nil, err
	}
	s.lock = lock
	return s, nil
}

func open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:            dir,
		opts:           opts,
		inst:           opts.Instruments,
		trie:           &Trie{},
		byUser:         map[bgp.ASN][]int32{},
		byProvider:     map[core.ProviderRef][]int32{},
		byCommunity:    map[bgp.Community][]int32{},
		byDay:          map[int64][]int32{},
		activeMinStart: noMinStart,
	}
	segs, err := listSegments(dir, opts.ReadOnly)
	if err != nil {
		if opts.ReadOnly && os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: no such store", dir)
		}
		return nil, err
	}
	scans := make([]scanResult, len(segs))
	for i, sf := range segs {
		if scans[i], err = readSegment(sf.path); err != nil {
			// A crash between a segment's creation and its first sync
			// can leave the newest file without a complete magic; treat
			// it like a torn tail, not corruption.
			if errors.Is(err, errNotSegment) && i == len(segs)-1 {
				if !opts.ReadOnly {
					if rerr := os.Remove(sf.path); rerr != nil {
						return nil, rerr
					}
				}
				segs, scans = segs[:i], scans[:i]
				s.recoveredTails++
				break
			}
			return nil, err
		}
	}

	// Honour compaction markers: a v1 marker in segment S supersedes
	// every lower-seq segment; a v2 marker supersedes exactly the seqs
	// it lists. Superseded segments are leftovers of a crash between a
	// merge's atomic commit and its cleanup — indexing them would
	// double-count every event they hold.
	superseded := map[uint64]bool{}
	for i := range segs {
		for _, rec := range scans[i].records {
			switch {
			case isMarkerV1(rec):
				for j := range segs {
					if segs[j].seq < segs[i].seq {
						superseded[segs[j].seq] = true
					}
				}
			case isMarkerV2(rec):
				listed, merr := markerV2Seqs(rec)
				if merr != nil {
					return nil, fmt.Errorf("store: %s: %w", segs[i].path, merr)
				}
				for _, q := range listed {
					// A marker can only speak for segments older than
					// itself; anything else is corruption — ignore it
					// rather than delete live data.
					if q < segs[i].seq {
						superseded[q] = true
					}
				}
			}
		}
	}
	if len(superseded) > 0 {
		keptSegs, keptScans := segs[:0:0], scans[:0:0]
		for i, sf := range segs {
			if superseded[sf.seq] {
				if !opts.ReadOnly {
					if err := os.Remove(sf.path); err != nil {
						return nil, err
					}
				}
				continue
			}
			keptSegs, keptScans = append(keptSegs, sf), append(keptScans, scans[i])
		}
		segs, scans = keptSegs, keptScans
	}

	// Pass 1: decode every record. Tombstones from all segments are
	// collected before any event is indexed — their time-based
	// semantics are independent of replay order.
	type decodedEvent struct {
		ev  *core.Event
		seg int // index into segs
	}
	var evs []decodedEvent
	for i, sf := range segs {
		segs[i].minStartNano = noMinStart
		for _, rec := range scans[i].records {
			switch {
			case isMarker(rec):
				// Applied above.
			case isTombstone(rec):
				tb, terr := decodeTombstone(rec)
				if terr != nil {
					return nil, fmt.Errorf("store: %s: %w", sf.path, terr)
				}
				s.tombs = append(s.tombs, tb)
				s.tombSeg = append(s.tombSeg, sf.seq)
			default:
				ev, derr := DecodeEvent(rec)
				if derr != nil {
					return nil, fmt.Errorf("store: %s: %w", sf.path, derr)
				}
				evs = append(evs, decodedEvent{ev: ev, seg: i})
				segs[i].hasEvents = true
				if nano := ev.Start.UTC().UnixNano(); nano < segs[i].minStartNano {
					segs[i].minStartNano = nano
				}
			}
		}
		segs[i].size = scans[i].validLen
		if scans[i].truncated {
			s.recoveredTails++
			if !opts.ReadOnly && i == len(segs)-1 {
				// Crash tore the newest segment's tail: truncate so new
				// appends start at a clean record boundary.
				if err := os.Truncate(sf.path, scans[i].validLen); err != nil {
					return nil, err
				}
			}
		}
	}

	// Pass 2: index the events that survive the tombstones. A skipped
	// event is dead on disk — its segment is flagged so compaction
	// knows to rewrite it for physical erasure.
	for _, d := range evs {
		if s.tombstoned(d.ev) {
			segs[d.seg].dead++
			continue
		}
		s.index(d.ev, segs[d.seg].seq)
	}

	if opts.ReadOnly {
		s.sealed = segs
		for _, sf := range s.sealed {
			s.sealedBytes += sf.size
		}
		return s, nil
	}

	// Reopen the newest segment for appending, or start the first one.
	// The reopened size is the scan's validLen, not the file size: any
	// torn bytes past it were truncated above (or belong to a garbage
	// tail new appends must not extend).
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		f, err := s.openSeg(last.path)
		if err != nil {
			return nil, err
		}
		s.active, s.seq, s.size = f, last.seq, scans[len(scans)-1].validLen
		s.activeDead = last.dead
		s.activeMinStart = last.minStartNano
		if last.hasEvents && opts.Policy.Partition > 0 {
			s.activePart = partitionKey(last.minStartNano, opts.Policy.Partition)
		}
		for _, d := range evs {
			if d.seg == len(segs)-1 && !s.tombstoned(d.ev) {
				s.activeEvents++
			}
		}
		s.sealed = segs[:len(segs)-1]
	} else {
		if err := s.startSegment(1); err != nil {
			return nil, err
		}
	}
	for _, sf := range s.sealed {
		s.sealedBytes += sf.size
	}
	if opts.CompactSegments > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	return s, nil
}

// startSegment creates segment seq and makes it the active one.
func (s *Store) startSegment(seq uint64) error {
	f, err := s.createSeg(filepath.Join(s.dir, segName(seq)))
	if err != nil {
		return err
	}
	s.active, s.seq, s.size = f, seq, int64(len(segMagic))
	s.activeEvents, s.activeDead, s.activeMinStart, s.activePart = 0, 0, noMinStart, 0
	return nil
}

// createSeg creates a fresh segment file with its magic written,
// through Options.OpenSegment when set (the fault-injection seam).
func (s *Store) createSeg(path string) (SegmentFile, error) {
	if s.opts.OpenSegment == nil {
		return createSegment(path)
	}
	f, err := s.opts.OpenSegment(path, true)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// openSeg reopens an existing segment for appending, through
// Options.OpenSegment when set.
func (s *Store) openSeg(path string) (SegmentFile, error) {
	if s.opts.OpenSegment == nil {
		return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	}
	return s.opts.OpenSegment(path, false)
}

// index adds ev to the in-memory state under the next ordinal, recording
// the segment holding its record.
func (s *Store) index(ev *core.Event, seq uint64) {
	ord := int32(len(s.events))
	s.events = append(s.events, ev)
	s.eventSeg = append(s.eventSeg, seq)
	s.live++
	s.trie.Insert(ev.Prefix, ord)
	for u := range ev.Users {
		s.byUser[u] = append(s.byUser[u], ord)
	}
	for pr := range ev.Providers {
		s.byProvider[pr] = append(s.byProvider[pr], ord)
	}
	for c := range ev.Communities {
		s.byCommunity[c] = append(s.byCommunity[c], ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		s.byDay[d] = append(s.byDay[d], ord)
	}
	if s.minStart.IsZero() || ev.Start.Before(s.minStart) {
		s.minStart = ev.Start
	}
	if ev.End.After(s.maxEnd) {
		s.maxEnd = ev.End
	}
}

// unindex removes ordinal ord from every index and nils its slot,
// returning the segment that still holds its record on disk. The caller
// must hold the write lock and have copy-on-write-cloned s.events if
// snapshots may be live.
func (s *Store) unindex(ord int32) uint64 {
	ev := s.events[ord]
	s.events[ord] = nil
	s.live--
	s.trie.Remove(ev.Prefix, ord)
	for u := range ev.Users {
		removePosting(s.byUser, u, ord)
	}
	for pr := range ev.Providers {
		removePosting(s.byProvider, pr, ord)
	}
	for c := range ev.Communities {
		removePosting(s.byCommunity, c, ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		removePosting(s.byDay, d, ord)
	}
	return s.eventSeg[ord]
}

// moveOrd relocates the live event at ordinal from to the (empty)
// ordinal to, rewriting every index posting — compaction uses it to put
// a duplicate's survivor at the key's first-appearance position, which
// is where the merged segment writes it. Caller holds the write lock
// with s.events cloned.
func (s *Store) moveOrd(from, to int32) {
	ev := s.events[from]
	s.events[to], s.events[from] = ev, nil
	s.eventSeg[to] = s.eventSeg[from]
	s.trie.Replace(ev.Prefix, from, to)
	for u := range ev.Users {
		replacePosting(s.byUser, u, from, to)
	}
	for pr := range ev.Providers {
		replacePosting(s.byProvider, pr, from, to)
	}
	for c := range ev.Communities {
		replacePosting(s.byCommunity, c, from, to)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		replacePosting(s.byDay, d, from, to)
	}
}

// removePosting drops ord from the postings of k, deleting the key when
// the list empties.
func removePosting[K comparable](m map[K][]int32, k K, ord int32) {
	l := m[k]
	for i, o := range l {
		if o == ord {
			nl := append(l[:i:i], l[i+1:]...)
			if len(nl) == 0 {
				delete(m, k)
			} else {
				m[k] = nl
			}
			return
		}
	}
}

// replacePosting swaps ordinal from for to in the postings of k,
// keeping the list sorted.
func replacePosting[K comparable](m map[K][]int32, k K, from, to int32) {
	l := m[k]
	for i, o := range l {
		if o == from {
			l = append(l[:i:i], l[i+1:]...)
			break
		}
	}
	at, _ := slices.BinarySearch(l, to)
	m[k] = slices.Insert(l, at, to)
}

// tombstoned reports whether any tombstone in force kills ev.
func (s *Store) tombstoned(ev *core.Event) bool {
	for _, tb := range s.tombs {
		if tb.Matches(ev) {
			return true
		}
	}
	return false
}

func unixDay(t time.Time) int64 {
	const day = 24 * 60 * 60
	sec := t.Unix()
	if sec < 0 {
		return (sec - day + 1) / day
	}
	return sec / day
}

// Append persists the events (in order) and indexes them. The write
// lands in the OS page cache; call Sync for durability. An event a
// tombstone in force already covers is written to the log but stays
// invisible (its record is dropped at the next compaction).
func (s *Store) Append(events ...*core.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opts.ReadOnly:
		return ErrReadOnly
	}
	if in := s.inst; in != nil {
		if in.AppendSeconds != nil {
			start := time.Now()
			defer func() { in.AppendSeconds.Observe(time.Since(start).Seconds()) }()
		}
		if in.AppendEvents != nil {
			in.AppendEvents.Add(uint64(len(events)))
		}
	}
	for _, ev := range events {
		// Time-partitioned segments: roll the active segment when the
		// event belongs to a different partition, so merges never have
		// to cross partition boundaries.
		if s.opts.Policy.Partition > 0 {
			pk := partitionKey(ev.Start.UTC().UnixNano(), s.opts.Policy.Partition)
			if s.activeEvents+s.activeDead > 0 && pk != s.activePart {
				if err := s.seal(); err != nil {
					return err
				}
			}
			if s.activeEvents+s.activeDead == 0 {
				s.activePart = pk
			}
		}
		payload := EncodeEvent(s.scratch[:0], ev)
		s.scratch = payload[:0]
		rec := appendRecord(nil, payload)
		if err := s.writeRecord(rec); err != nil {
			return fmt.Errorf("store: append: %w", err)
		}
		if nano := ev.Start.UTC().UnixNano(); nano < s.activeMinStart {
			s.activeMinStart = nano
		}
		if s.tombstoned(ev) {
			s.activeDead++ // dead on arrival: logged but invisible
		} else {
			s.index(ev, s.seq)
			s.activeEvents++
		}
		if s.size >= s.opts.MaxSegmentBytes {
			if err := s.seal(); err != nil {
				return err
			}
		}
	}
	return s.maybeGroupCommit()
}

// writeRecord appends one raw record to the active segment, tracking
// size and group-commit lag. A wounded segment (an earlier write or
// fsync failure left its tail in an unknown state) is failed over to a
// fresh segment first, so a torn record can never sit in the middle of
// a record boundary new appends extend.
func (s *Store) writeRecord(rec []byte) error {
	if s.writeFailed {
		if err := s.failoverSeal(); err != nil {
			return fmt.Errorf("segment failover: %w", err)
		}
	}
	if _, err := s.active.Write(rec); err != nil {
		s.writeFailed = true
		return err
	}
	s.size += int64(len(rec))
	s.unsynced++
	return nil
}

// maybeGroupCommit applies Options.Sync after a batch of appended
// records: fsync now when the policy demands it, or arm the Interval
// timer. A pending timer-sync failure surfaces here first. Caller
// holds the write lock.
func (s *Store) maybeGroupCommit() error {
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return fmt.Errorf("store: group commit: %w", err)
	}
	pol := s.opts.Sync
	if pol.Always || (pol.EveryN > 0 && s.unsynced >= pol.EveryN) {
		if err := s.syncActive(); err != nil {
			return fmt.Errorf("store: group commit: %w", err)
		}
		return nil
	}
	if pol.Interval > 0 && s.unsynced > 0 && s.syncTimer == nil {
		s.syncTimer = time.AfterFunc(pol.Interval, s.timedSync)
	}
	return nil
}

// syncActive fsyncs the active segment and resets the group-commit
// lag. Caller holds the write lock.
func (s *Store) syncActive() error {
	if s.active == nil {
		return nil
	}
	s.observeCommitBatch()
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		return err
	}
	s.unsynced = 0
	s.stopSyncTimer()
	return nil
}

func (s *Store) stopSyncTimer() {
	if s.syncTimer != nil {
		s.syncTimer.Stop()
		s.syncTimer = nil
	}
}

// timedSync is the Interval policy's deadline: fsync whatever the
// group commit has accumulated. Its failure is remembered and returned
// by the next Append or Sync (a timer has no caller to report to).
func (s *Store) timedSync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncTimer = nil
	if s.closed || s.active == nil || s.unsynced == 0 {
		return
	}
	s.observeCommitBatch()
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		s.asyncErr = err
		return
	}
	s.unsynced = 0
}

// failoverSeal abandons a wounded active segment: a failed write or
// fsync left bytes past the last known-good record in an unknown
// state, so the file is sealed at its known-good length — recovery
// skips any torn bytes beyond it — and a fresh segment takes over.
// Sync and close on the wounded file are best-effort: its data is
// already at risk, and the point here is a clean record boundary for
// everything appended next.
func (s *Store) failoverSeal() error {
	next, err := s.createSeg(filepath.Join(s.dir, segName(s.seq+1)))
	if err != nil {
		return err
	}
	s.fsync()
	s.finishSeal(next)
	s.writeFailed = false
	if in := s.inst; in != nil && in.Failovers != nil {
		in.Failovers.Inc()
	}
	return nil
}

// DeletePrefix erases the history of a prefix: every stored event whose
// prefix lies inside prefix (including exact matches) and — when upTo
// is non-zero — ended at or before upTo disappears from queries
// immediately, and its bytes are dropped from disk at the next
// compaction of its segment. The tombstone is durable (an appended
// record; call Sync for immediate durability) and stays in force for
// later appends and reopens. Returns the number of events erased now.
func (s *Store) DeletePrefix(prefix netip.Prefix, upTo time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return 0, ErrClosed
	case s.opts.ReadOnly:
		return 0, ErrReadOnly
	case !prefix.IsValid():
		return 0, fmt.Errorf("store: DeletePrefix: invalid prefix")
	}
	tb := Tombstone{Prefix: prefix.Masked()}
	if !upTo.IsZero() {
		tb.UpTo = upTo.UTC()
	}
	rec := appendRecord(nil, encodeTombstone(nil, tb))
	if err := s.writeRecord(rec); err != nil {
		return 0, fmt.Errorf("store: delete: %w", err)
	}
	s.tombs = append(s.tombs, tb)
	s.tombSeg = append(s.tombSeg, s.seq)

	// Collect doomed ordinals first: unindex mutates the postings the
	// trie matches alias.
	var doomed []int32
	for _, m := range s.trie.Covered(tb.Prefix) {
		for _, ord := range m.Ords {
			if ev := s.events[ord]; ev != nil && (tb.UpTo.IsZero() || !ev.End.After(tb.UpTo)) {
				doomed = append(doomed, ord)
			}
		}
	}
	if len(doomed) > 0 {
		// Copy-on-write: snapshots handed out by All keep the old array.
		s.events = slices.Clone(s.events)
		for _, ord := range doomed {
			seq := s.unindex(ord)
			if seq == s.seq {
				s.activeDead++
				s.activeEvents--
			} else {
				for i := range s.sealed {
					if s.sealed[i].seq == seq {
						s.sealed[i].dead++
						break
					}
				}
			}
		}
	}
	if s.size >= s.opts.MaxSegmentBytes {
		if err := s.seal(); err != nil {
			return len(doomed), err
		}
	}
	return len(doomed), s.maybeGroupCommit()
}

// seal syncs and closes the active segment and starts the next one.
// The replacement segment is created first, so the store keeps a valid
// active segment on every error path. Caller holds the write lock.
func (s *Store) seal() error {
	next, err := s.createSeg(filepath.Join(s.dir, segName(s.seq+1)))
	if err != nil {
		return err
	}
	if err := s.fsync(); err != nil {
		s.writeFailed = true
		next.Close()
		os.Remove(next.Name())
		return err
	}
	s.finishSeal(next)
	return nil
}

// finishSeal retires the active segment — its data is already synced
// (or abandoned, on the failover path) — records it in the sealed set,
// and installs next as the new active segment. Caller holds the write
// lock.
func (s *Store) finishSeal(next SegmentFile) {
	// The old active's data is synced; a close error cannot lose anything.
	s.active.Close()
	s.sealed = append(s.sealed, segFile{
		seq:          s.seq,
		path:         filepath.Join(s.dir, segName(s.seq)),
		size:         s.size,
		minStartNano: s.activeMinStart,
		hasEvents:    s.activeEvents+s.activeDead > 0,
		dead:         s.activeDead,
	})
	s.sealedBytes += s.size
	if in := s.inst; in != nil && in.Seals != nil {
		in.Seals.Inc()
	}
	s.active, s.seq, s.size = next, s.seq+1, int64(len(segMagic))
	s.activeEvents, s.activeDead, s.activeMinStart, s.activePart = 0, 0, noMinStart, 0
	s.unsynced = 0
	s.stopSyncTimer()
	if s.compactCh != nil && len(s.sealed) >= s.opts.CompactSegments {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
}

// Sync flushes the active segment to stable storage. A deferred
// group-commit failure (an Interval timer fsync that failed) surfaces
// here if no Append reported it first.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.asyncErr; err != nil {
		s.asyncErr = nil
		return fmt.Errorf("store: group commit: %w", err)
	}
	if s.active == nil {
		return nil
	}
	return s.syncActive()
}

// Close syncs and closes the store. Further calls fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.stopSyncTimer()
	compactDone := s.compactDone
	if s.compactCh != nil {
		close(s.compactCh)
	}
	var err error
	if s.active != nil {
		if serr := s.fsync(); serr != nil {
			err = serr
		}
		if cerr := s.active.Close(); err == nil {
			err = cerr
		}
		s.active = nil
	}
	lock := s.lock
	s.lock = ""
	s.mu.Unlock()
	if compactDone != nil {
		<-compactDone
	}
	// Release the writer lock last, after any in-flight compaction has
	// finished touching the directory.
	if lock != "" {
		os.Remove(lock)
	}
	return err
}

// Len returns the number of live events in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.live
}

// Stats snapshots the store's shape.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Events:         s.live,
		Prefixes:       s.trie.Len(),
		Segments:       len(s.sealed),
		Bytes:          s.sealedBytes,
		Tombstones:     len(s.tombs),
		PendingErasure: s.activeDead,
		Unsynced:       s.unsynced,
		RecoveredTails: s.recoveredTails,
		MinStart:       s.minStart,
		MaxEnd:         s.maxEnd,
	}
	for _, sf := range s.sealed {
		st.PendingErasure += sf.dead
	}
	if s.active != nil {
		st.Segments++
		st.Bytes += s.size
	}
	return st
}

// All returns the stored live events in append order, as a snapshot:
// events appended or erased after the call are not reflected.
func (s *Store) All() iter.Seq[*core.Event] {
	s.mu.RLock()
	events := s.events[:len(s.events):len(s.events)]
	s.mu.RUnlock()
	return func(yield func(*core.Event) bool) {
		for _, ev := range events {
			if ev == nil {
				continue
			}
			if !yield(ev) {
				return
			}
		}
	}
}

func (s *Store) compactLoop() {
	defer close(s.compactDone)
	pol := s.opts.Policy
	if pol == (Policy{}) {
		pol = Policy{MergeAll: true}
	}
	for range s.compactCh {
		// Best-effort: a failed background compaction leaves the store
		// exactly as it was (no rename happened).
		s.CompactWith(pol)
	}
}

// dupKey identifies records of the same underlying blackholing
// occurrence: the engine serializes events per prefix, so two records
// sharing (prefix, start, start-unknown) are the same event closed
// twice — typically once artificially by an end-of-window flush and
// once, longer, by a later overlapping replay.
type dupKey struct {
	prefix       netip.Prefix
	start        int64
	startUnknown bool
}

func keyOf(ev *core.Event) dupKey {
	return dupKey{ev.Prefix, ev.Start.UTC().UnixNano(), ev.StartUnknown}
}

// supersedes reports whether a replaces b for the same dupKey.
func supersedes(a, b *core.Event) bool {
	if !a.End.Equal(b.End) {
		return a.End.After(b.End)
	}
	return a.Detections >= b.Detections
}
