package store

// Replica shipping. A store directory is a set of immutable-once-
// sealed, CRC-framed segment files plus advisory sidecars, which makes
// replication plain file synchronization: copy what the source has,
// delete what it no longer has, skip what already matches. A replica
// directory is opened read-only (OpenReadOnly / the root facade's
// OpenStoreReadOnly) and serves the full query surface — the shape the
// federated router fans out to when shards carry read replicas.
//
// Safety argument, piece by piece:
//
//   - Sealed segments never change, so name+size equality means byte
//     equality and the copy can be skipped.
//   - The active (highest-seq) segment may be mid-append on a live
//     source. Every record is length+CRC framed, so any prefix of the
//     file is a valid segment to a read-only open — scanSegment stops
//     at the first torn record exactly as crash recovery does. A
//     half-shipped tail costs the replica the newest few events until
//     the next pass, never correctness.
//   - Sidecars are advisory and self-invalidating (they record the
//     segment size they summarize). Shipping a stale one just demotes
//     that segment to a full decode on the replica.
//   - Copies land under a temporary name and rename into place, so a
//     replica opening mid-ship sees either the old file or the new
//     one. The ".tmp" infix keeps half-copies invisible to open.
//   - Compaction replaces segments; deleting destination files whose
//     seq vanished from the source keeps the replica from double
//     counting events that a rewrite moved into a new segment.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ReplicaReport says what one Replicate pass did.
type ReplicaReport struct {
	// Copied lists the file names shipped this pass (segments and
	// sidecars), in ship order.
	Copied []string
	// Skipped counts source files left alone because the destination
	// already had them at the same size.
	Skipped int
	// Deleted lists destination segment/sidecar names removed because
	// the source no longer has their seq (compaction superseded them).
	Deleted []string
	// Bytes is the total payload shipped.
	Bytes int64
}

// Replicate one-shot syncs the store directory srcDir into dstDir.
// It is safe to run against a live source store (see the package
// comment above) and safe to re-run: unchanged files are skipped, so
// steady-state passes ship only the active segment's growth. The
// destination must not be an open read-write store — it is meant to be
// served by read-only opens.
func Replicate(srcDir, dstDir string) (*ReplicaReport, error) {
	sa, err1 := filepath.Abs(srcDir)
	da, err2 := filepath.Abs(dstDir)
	if err1 == nil && err2 == nil && sa == da {
		return nil, fmt.Errorf("replicate: source and destination are the same directory %s", sa)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(srcDir, true)
	if err != nil {
		return nil, err
	}
	sums, err := listSidecars(srcDir)
	if err != nil {
		return nil, err
	}

	rep := &ReplicaReport{}
	want := map[string]bool{} // dst basenames that should exist after this pass
	ship := func(srcPath, name string) error {
		want[name] = true
		si, err := os.Stat(srcPath)
		if err != nil {
			return err
		}
		if di, err := os.Stat(filepath.Join(dstDir, name)); err == nil && di.Size() == si.Size() {
			rep.Skipped++
			return nil
		}
		n, err := copyFileAtomic(srcPath, dstDir, name)
		if err != nil {
			return err
		}
		rep.Copied = append(rep.Copied, name)
		rep.Bytes += n
		return nil
	}
	for _, sf := range segs {
		// Segment before sidecar: a sidecar without its segment is an
		// orphan, a segment without its sidecar just open-decodes.
		if err := ship(sf.path, segName(sf.seq)); err != nil {
			return rep, err
		}
		if sp, ok := sums[sf.seq]; ok {
			if err := ship(sp, sumName(sf.seq)); err != nil {
				return rep, err
			}
		}
	}

	// Retire destination files the source no longer has.
	entries, err := os.ReadDir(dstDir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		name := e.Name()
		_, isSeg := parseSegName(name)
		_, isSum := parseSumName(name)
		if (!isSeg && !isSum) || want[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dstDir, name)); err != nil {
			return rep, err
		}
		rep.Deleted = append(rep.Deleted, name)
	}
	if err := syncDir(dstDir); err != nil {
		return rep, err
	}
	return rep, nil
}

// copyFileAtomic copies src into dir/name via a temp file + rename,
// fsyncing the payload before the rename so a crash can't leave a
// renamed-but-hollow file. Returns the bytes copied.
func copyFileAtomic(src, dir, name string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	n, err := io.Copy(tmp, in)
	if err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return 0, err
	}
	tmpName := tmp.Name()
	tmp = nil
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	return n, nil
}
