// Package stream provides a BGPStream-like abstraction (§3, [54]): a
// time-ordered stream of BGP updates merged across many collectors, with
// composable filters and replay from MRT archives. The inference engine
// consumes one merged stream exactly as the paper's pipeline consumes
// BGPStream elements.
package stream

import (
	"errors"
	"io"
	"net/netip"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
)

// Elem is one stream element: an update plus its collection context.
type Elem struct {
	Collector string
	Platform  collector.Platform
	Update    *bgp.Update
}

// Stream yields elements in non-decreasing time order.
type Stream interface {
	// Next returns the next element, or nil, io.EOF at end of stream.
	Next() (*Elem, error)
}

// sliceStream replays a pre-sorted slice.
type sliceStream struct {
	elems []*Elem
	pos   int
}

func (s *sliceStream) Next() (*Elem, error) {
	if s.pos >= len(s.elems) {
		return nil, io.EOF
	}
	e := s.elems[s.pos]
	s.pos++
	return e, nil
}

// elemTimeSorter stably sorts elements by cached int64 UnixNano keys —
// much cheaper than calling time.Time.Before through a closure for every
// comparison on the stream-assembly hot path.
type elemTimeSorter struct {
	keys  []int64
	elems []*Elem
}

func (s *elemTimeSorter) Len() int           { return len(s.elems) }
func (s *elemTimeSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *elemTimeSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.elems[i], s.elems[j] = s.elems[j], s.elems[i]
}

func sortElemsByTime(elems []*Elem) {
	keys := make([]int64, len(elems))
	for i, e := range elems {
		keys[i] = e.Update.Time.UnixNano()
	}
	sort.Stable(&elemTimeSorter{keys: keys, elems: elems})
}

// SortedElems converts collector observations into a time-sorted element
// slice (stable for equal timestamps). The parallel replay pipeline uses
// it to materialize per-day batches without the Stream indirection.
func SortedElems(obs []collector.Observation) []*Elem {
	elems := make([]*Elem, len(obs))
	backing := make([]Elem, len(obs))
	for i, o := range obs {
		backing[i] = Elem{Collector: o.Collector.Name, Platform: o.Collector.Platform, Update: o.Update}
		elems[i] = &backing[i]
	}
	sortElemsByTime(elems)
	return elems
}

// FromObservations builds a stream from collector observations, sorted
// by time (stable for equal timestamps).
func FromObservations(obs []collector.Observation) Stream {
	return &sliceStream{elems: SortedElems(obs)}
}

// FromElems builds a stream from elements, sorting them by time.
func FromElems(elems []*Elem) Stream {
	out := append([]*Elem(nil), elems...)
	sortElemsByTime(out)
	return &sliceStream{elems: out}
}

// mergeStream k-way merges child streams with a binary min-heap keyed by
// (UnixNano, source index), replacing the O(k) scan per Next. The
// source-index tie-break preserves the historical ordering: on equal
// timestamps the lowest-numbered source wins.
type mergeStream struct {
	srcs   []Stream
	heap   *Heap[mergeEntry]
	primed bool
	// err is a deferred source error: a refill failure is surfaced on
	// the Next call after the already-popped element is delivered.
	err error
}

type mergeEntry struct {
	key  int64
	src  int
	elem *Elem
}

// Merge combines streams into one time-ordered stream. Children must
// themselves be time-ordered.
func Merge(srcs ...Stream) Stream {
	return &mergeStream{srcs: srcs, heap: NewHeap(func(a, b mergeEntry) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.src < b.src
	})}
}

// pull reads the next element of source i onto the heap.
func (m *mergeStream) pull(i int) error {
	e, err := m.srcs[i].Next()
	if errors.Is(err, io.EOF) {
		return nil
	}
	if err != nil {
		return err
	}
	m.heap.Push(mergeEntry{key: e.Update.Time.UnixNano(), src: i, elem: e})
	return nil
}

func (m *mergeStream) Next() (*Elem, error) {
	if m.err != nil {
		err := m.err
		m.err = nil
		return nil, err
	}
	if !m.primed {
		m.primed = true
		m.heap.Grow(len(m.srcs))
		// Prime every source even if one errors, so a caller that
		// continues past the error still merges the healthy sources;
		// the first priming error surfaces immediately.
		for i, src := range m.srcs {
			if src == nil {
				continue
			}
			if err := m.pull(i); err != nil && m.err == nil {
				m.err = err
			}
		}
		if m.err != nil {
			err := m.err
			m.err = nil
			return nil, err
		}
	}
	if m.heap.Len() == 0 {
		return nil, io.EOF
	}
	root := m.heap.Pop()
	// A refill failure must not swallow the element already popped:
	// deliver it now and surface the error on the following call.
	m.err = m.pull(root.src)
	return root.elem, nil
}

// filterStream drops elements not matching the predicate.
type filterStream struct {
	src  Stream
	pred func(*Elem) bool
}

func (f *filterStream) Next() (*Elem, error) {
	for {
		e, err := f.src.Next()
		if err != nil {
			return nil, err
		}
		if f.pred(e) {
			return e, nil
		}
	}
}

// Filter wraps a stream with a predicate.
func Filter(src Stream, pred func(*Elem) bool) Stream {
	return &filterStream{src: src, pred: pred}
}

// ByPlatform keeps only elements from one platform.
func ByPlatform(src Stream, p collector.Platform) Stream {
	return Filter(src, func(e *Elem) bool { return e.Platform == p })
}

// ByTimeWindow keeps elements with from <= t < to.
func ByTimeWindow(src Stream, from, to time.Time) Stream {
	return Filter(src, func(e *Elem) bool {
		t := e.Update.Time
		return !t.Before(from) && t.Before(to)
	})
}

// ByPrefix keeps elements announcing or withdrawing prefixes covered by p.
func ByPrefix(src Stream, p netip.Prefix) Stream {
	return Filter(src, func(e *Elem) bool {
		for _, x := range e.Update.Announced {
			if p.Overlaps(x) {
				return true
			}
		}
		for _, x := range e.Update.Withdrawn {
			if p.Overlaps(x) {
				return true
			}
		}
		return false
	})
}

// FromMRT replays a single MRT archive as a stream. RIB records are
// expanded into one announcement per entry (stamped with the record
// time); BGP4MP records yield their inner update.
func FromMRT(r *mrt.Reader, collectorName string, platform collector.Platform) Stream {
	return &mrtStream{r: r, name: collectorName, platform: platform}
}

type mrtStream struct {
	r        *mrt.Reader
	name     string
	platform collector.Platform
	pending  []*Elem
}

func (m *mrtStream) Next() (*Elem, error) {
	for {
		if len(m.pending) > 0 {
			e := m.pending[0]
			m.pending = m.pending[1:]
			return e, nil
		}
		rec, err := m.r.Next()
		if err != nil {
			return nil, err
		}
		switch rec := rec.(type) {
		case *mrt.BGP4MPMessage:
			return &Elem{Collector: m.name, Platform: m.platform, Update: rec.Update}, nil
		case *mrt.RIB:
			entries, err := m.r.ResolveRIB(rec)
			if err != nil {
				return nil, err
			}
			for i := range entries {
				u := entries[i].ToUpdate(rec.Time)
				m.pending = append(m.pending, &Elem{Collector: m.name, Platform: m.platform, Update: u})
			}
		case *mrt.PeerIndexTable:
			// Consumed by the reader for RIB resolution.
		}
	}
}

// Collect drains a stream into a slice (for tests and small replays).
func Collect(s Stream) ([]*Elem, error) {
	var out []*Elem
	for {
		e, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
