// Package stream provides a BGPStream-like abstraction (§3, [54]): a
// time-ordered stream of BGP updates merged across many collectors, with
// composable filters and replay from MRT archives. The inference engine
// consumes one merged stream exactly as the paper's pipeline consumes
// BGPStream elements.
package stream

import (
	"errors"
	"io"
	"net/netip"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
)

// Elem is one stream element: an update plus its collection context.
type Elem struct {
	Collector string
	Platform  collector.Platform
	Update    *bgp.Update
}

// Stream yields elements in non-decreasing time order.
type Stream interface {
	// Next returns the next element, or nil, io.EOF at end of stream.
	Next() (*Elem, error)
}

// sliceStream replays a pre-sorted slice.
type sliceStream struct {
	elems []*Elem
	pos   int
}

func (s *sliceStream) Next() (*Elem, error) {
	if s.pos >= len(s.elems) {
		return nil, io.EOF
	}
	e := s.elems[s.pos]
	s.pos++
	return e, nil
}

// FromObservations builds a stream from collector observations, sorted
// by time (stable for equal timestamps).
func FromObservations(obs []collector.Observation) Stream {
	elems := make([]*Elem, len(obs))
	for i, o := range obs {
		elems[i] = &Elem{Collector: o.Collector.Name, Platform: o.Collector.Platform, Update: o.Update}
	}
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].Update.Time.Before(elems[j].Update.Time) })
	return &sliceStream{elems: elems}
}

// FromElems builds a stream from elements, sorting them by time.
func FromElems(elems []*Elem) Stream {
	out := append([]*Elem(nil), elems...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Update.Time.Before(out[j].Update.Time) })
	return &sliceStream{elems: out}
}

// mergeStream k-way merges child streams by element time.
type mergeStream struct {
	heads []*Elem
	srcs  []Stream
}

// Merge combines streams into one time-ordered stream. Children must
// themselves be time-ordered.
func Merge(srcs ...Stream) Stream {
	m := &mergeStream{srcs: srcs, heads: make([]*Elem, len(srcs))}
	return m
}

func (m *mergeStream) Next() (*Elem, error) {
	best := -1
	for i, src := range m.srcs {
		if m.heads[i] == nil && src != nil {
			e, err := src.Next()
			if errors.Is(err, io.EOF) {
				m.srcs[i] = nil
				continue
			}
			if err != nil {
				return nil, err
			}
			m.heads[i] = e
		}
		if m.heads[i] != nil {
			if best == -1 || m.heads[i].Update.Time.Before(m.heads[best].Update.Time) {
				best = i
			}
		}
	}
	if best == -1 {
		return nil, io.EOF
	}
	e := m.heads[best]
	m.heads[best] = nil
	return e, nil
}

// filterStream drops elements not matching the predicate.
type filterStream struct {
	src  Stream
	pred func(*Elem) bool
}

func (f *filterStream) Next() (*Elem, error) {
	for {
		e, err := f.src.Next()
		if err != nil {
			return nil, err
		}
		if f.pred(e) {
			return e, nil
		}
	}
}

// Filter wraps a stream with a predicate.
func Filter(src Stream, pred func(*Elem) bool) Stream {
	return &filterStream{src: src, pred: pred}
}

// ByPlatform keeps only elements from one platform.
func ByPlatform(src Stream, p collector.Platform) Stream {
	return Filter(src, func(e *Elem) bool { return e.Platform == p })
}

// ByTimeWindow keeps elements with from <= t < to.
func ByTimeWindow(src Stream, from, to time.Time) Stream {
	return Filter(src, func(e *Elem) bool {
		t := e.Update.Time
		return !t.Before(from) && t.Before(to)
	})
}

// ByPrefix keeps elements announcing or withdrawing prefixes covered by p.
func ByPrefix(src Stream, p netip.Prefix) Stream {
	return Filter(src, func(e *Elem) bool {
		for _, x := range e.Update.Announced {
			if p.Overlaps(x) {
				return true
			}
		}
		for _, x := range e.Update.Withdrawn {
			if p.Overlaps(x) {
				return true
			}
		}
		return false
	})
}

// FromMRT replays a single MRT archive as a stream. RIB records are
// expanded into one announcement per entry (stamped with the record
// time); BGP4MP records yield their inner update.
func FromMRT(r *mrt.Reader, collectorName string, platform collector.Platform) Stream {
	return &mrtStream{r: r, name: collectorName, platform: platform}
}

type mrtStream struct {
	r        *mrt.Reader
	name     string
	platform collector.Platform
	pending  []*Elem
}

func (m *mrtStream) Next() (*Elem, error) {
	for {
		if len(m.pending) > 0 {
			e := m.pending[0]
			m.pending = m.pending[1:]
			return e, nil
		}
		rec, err := m.r.Next()
		if err != nil {
			return nil, err
		}
		switch rec := rec.(type) {
		case *mrt.BGP4MPMessage:
			return &Elem{Collector: m.name, Platform: m.platform, Update: rec.Update}, nil
		case *mrt.RIB:
			entries, err := m.r.ResolveRIB(rec)
			if err != nil {
				return nil, err
			}
			for i := range entries {
				u := entries[i].ToUpdate(rec.Time)
				m.pending = append(m.pending, &Elem{Collector: m.name, Platform: m.platform, Update: u})
			}
		case *mrt.PeerIndexTable:
			// Consumed by the reader for RIB resolution.
		}
	}
}

// Collect drains a stream into a slice (for tests and small replays).
func Collect(s Stream) ([]*Elem, error) {
	var out []*Elem
	for {
		e, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
