package stream

import (
	"io"
	"sync"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

// Live is a channel-backed stream for near-real-time consumption, the
// BGPStream "live mode" the paper's §10 measurement campaign runs on:
// producers push elements as collectors observe them; a consumer drains
// them through the ordinary Stream interface. Closing the live stream
// ends the consumer with io.EOF after the buffer drains.
type Live struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []*Elem
	closed bool
}

// NewLive returns an open live stream.
func NewLive() *Live {
	l := &Live{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Publish appends one element. Publishing to a closed stream is a
// no-op (late producers during shutdown are tolerated).
func (l *Live) Publish(e *Elem) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.buf = append(l.buf, e)
	l.cond.Signal()
}

// PublishObservation converts and publishes a collector observation.
func (l *Live) PublishObservation(o collector.Observation) {
	l.Publish(&Elem{Collector: o.Collector.Name, Platform: o.Collector.Platform, Update: o.Update})
}

// Close ends the stream; pending elements still drain.
func (l *Live) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// Next blocks until an element is available or the stream is closed and
// drained.
func (l *Live) Next() (*Elem, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) == 0 && !l.closed {
		l.cond.Wait()
	}
	if len(l.buf) == 0 {
		return nil, io.EOF
	}
	e := l.buf[0]
	l.buf = l.buf[1:]
	return e, nil
}

// Pending reports the buffered element count (monitoring hook).
func (l *Live) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Tick is a convenience for tests and examples: it publishes a minimal
// keepalive-like element with only a timestamp, letting consumers
// observe time progress on otherwise quiet feeds.
func (l *Live) Tick(name string, platform collector.Platform, t time.Time) {
	l.Publish(&Elem{Collector: name, Platform: platform, Update: &bgp.Update{Time: t}})
}
