package stream

import (
	"errors"
	"io"
	"sync"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

// ErrInterrupted is returned by Live.Next after Interrupt: the consumer
// was unblocked without waiting for the buffer to drain (cancellation),
// in contrast to the graceful Close/io.EOF path. An interrupt is
// consumed by the Next call that reports it — the stream itself stays
// usable, so a later consumer (a fresh run over the same feed) can
// pick up where the canceled one stopped.
var ErrInterrupted = errors.New("stream: live stream interrupted")

// Live is a channel-backed stream for near-real-time consumption, the
// BGPStream "live mode" the paper's §10 measurement campaign runs on:
// producers push elements as collectors observe them; a consumer drains
// them through the ordinary Stream interface. Closing the live stream
// ends the consumer with io.EOF after the buffer drains.
type Live struct {
	mu          sync.Mutex
	cond        *sync.Cond
	buf         []*Elem
	limit       int // max buffered elements; 0 = unbounded
	dropped     uint64
	closed      bool
	interrupted bool
}

// NewLive returns an open live stream.
func NewLive() *Live {
	l := &Live{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Publish appends one element. Publishing to a closed stream is a
// no-op (late producers during shutdown are tolerated). When a buffer
// limit is set and the consumer has fallen that far behind, the oldest
// buffered element is discarded to make room — a live feed prefers a
// gappy present over an unbounded past.
func (l *Live) Publish(e *Elem) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.limit > 0 && len(l.buf) >= l.limit {
		l.buf = append(l.buf[1:len(l.buf):len(l.buf)], e)
		l.dropped++
	} else {
		l.buf = append(l.buf, e)
	}
	l.cond.Signal()
}

// PublishObservation converts and publishes a collector observation.
func (l *Live) PublishObservation(o collector.Observation) {
	l.Publish(&Elem{Collector: o.Collector.Name, Platform: o.Collector.Platform, Update: o.Update})
}

// Close ends the stream; pending elements still drain.
func (l *Live) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// Interrupt unblocks the consumer immediately: the next Next call
// (pending or future) returns ErrInterrupted without draining the
// buffer, and the interrupt is consumed by that call. Cancellation
// paths use it to abort a consumer parked in Next; use Close for a
// graceful drain-then-EOF shutdown instead.
func (l *Live) Interrupt() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.interrupted = true
	l.cond.Broadcast()
}

// ClearInterrupt discards a pending interrupt that no consumer
// observed — a canceled run that exited without a final Next call
// leaves one behind; the next run clears it before consuming.
func (l *Live) ClearInterrupt() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.interrupted = false
}

// Next blocks until an element is available or the stream is closed and
// drained.
func (l *Live) Next() (*Elem, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) == 0 && !l.closed && !l.interrupted {
		l.cond.Wait()
	}
	if l.interrupted {
		l.interrupted = false
		return nil, ErrInterrupted
	}
	if len(l.buf) == 0 {
		return nil, io.EOF
	}
	e := l.buf[0]
	l.buf = l.buf[1:]
	return e, nil
}

// Pending reports the buffered element count (monitoring hook).
func (l *Live) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// SetLimit bounds the publish buffer at n elements; 0 restores the
// default unbounded buffer. Shrinking below the current backlog does
// not discard already-buffered elements — the bound applies to future
// publishes.
func (l *Live) SetLimit(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.limit = n
}

// Dropped counts elements discarded by the buffer limit.
func (l *Live) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Tick is a convenience for tests and examples: it publishes a minimal
// keepalive-like element with only a timestamp, letting consumers
// observe time progress on otherwise quiet feeds.
func (l *Live) Tick(name string, platform collector.Platform, t time.Time) {
	l.Publish(&Elem{Collector: name, Platform: platform, Update: &bgp.Update{Time: t}})
}
