package stream

import (
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bgpblackholing/internal/collector"
)

func TestLivePublishConsume(t *testing.T) {
	l := NewLive()
	go func() {
		for i := 0; i < 5; i++ {
			l.Publish(elem("live", collector.PlatformRIS, time.Duration(i)*time.Second, "31.0.0.1/32"))
		}
		l.Close()
	}()
	got, err := Collect(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d elements", len(got))
	}
}

func TestLiveCloseDrains(t *testing.T) {
	l := NewLive()
	l.Publish(elem("live", collector.PlatformRIS, 0, "31.0.0.1/32"))
	l.Close()
	if _, err := l.Next(); err != nil {
		t.Fatal("buffered element should drain after close")
	}
	if _, err := l.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("want EOF after drain")
	}
	// Publishing after close is a tolerated no-op.
	l.Publish(elem("live", collector.PlatformRIS, 0, "31.0.0.2/32"))
	if l.Pending() != 0 {
		t.Fatal("closed stream accepted an element")
	}
}

func TestLiveBlocksUntilPublish(t *testing.T) {
	l := NewLive()
	done := make(chan *Elem, 1)
	go func() {
		e, _ := l.Next()
		done <- e
	}()
	select {
	case <-done:
		t.Fatal("Next returned without data")
	case <-time.After(20 * time.Millisecond):
	}
	l.Publish(elem("live", collector.PlatformRV, 0, "31.0.0.1/32"))
	select {
	case e := <-done:
		if e == nil {
			t.Fatal("nil element")
		}
	case <-time.After(time.Second):
		t.Fatal("consumer never woke")
	}
}

func TestLiveConcurrentProducers(t *testing.T) {
	l := NewLive()
	const producers, per = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Publish(elem("live", collector.PlatformCDN, time.Duration(i)*time.Millisecond, "31.0.0.1/32"))
			}
		}(p)
	}
	go func() {
		wg.Wait()
		l.Close()
	}()
	got, err := Collect(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != producers*per {
		t.Fatalf("got %d, want %d", len(got), producers*per)
	}
}

// Property: merging any partition of a time-sorted element list
// reproduces a time-sorted list of the same length.
func TestMergePreservesOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%60 + 2
		var elems []*Elem
		for i := 0; i < n; i++ {
			elems = append(elems, elem("x", collector.PlatformRIS, time.Duration(i)*time.Second, "31.0.0.1/32"))
		}
		// Partition round-robin by a seed-dependent stride into k children.
		k := int(seed%3+2) ^ 0
		if k < 2 {
			k = 2
		}
		parts := make([][]*Elem, k)
		for i, e := range elems {
			parts[i%k] = append(parts[i%k], e)
		}
		var streams []Stream
		for _, p := range parts {
			streams = append(streams, FromElems(p))
		}
		got, err := Collect(Merge(streams...))
		if err != nil || len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Update.Time.Before(got[i-1].Update.Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
