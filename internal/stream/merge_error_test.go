package stream

import (
	"errors"
	"io"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
)

// errAfterStream yields its elements, then a non-EOF error.
type errAfterStream struct {
	elems []*Elem
	err   error
}

func (s *errAfterStream) Next() (*Elem, error) {
	if len(s.elems) == 0 {
		return nil, s.err
	}
	e := s.elems[0]
	s.elems = s.elems[1:]
	return e, nil
}

// TestMergeDeliversElementBeforeSourceError guards the heap merge's
// error path: an element already selected must be delivered before a
// refill error from its source surfaces.
func TestMergeDeliversElementBeforeSourceError(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	parseErr := errors.New("corrupt MRT record")
	bad := &errAfterStream{
		elems: []*Elem{{Collector: "bad", Update: &bgp.Update{Time: t0}}},
		err:   parseErr,
	}
	good := &sliceStream{elems: []*Elem{{Collector: "good", Update: &bgp.Update{Time: t0.Add(time.Hour)}}}}

	m := Merge(bad, good)
	e, err := m.Next()
	if err != nil || e == nil || e.Collector != "bad" {
		t.Fatalf("first Next = (%v, %v), want the bad source's element", e, err)
	}
	if _, err := m.Next(); !errors.Is(err, parseErr) {
		t.Fatalf("second Next err = %v, want the deferred source error", err)
	}
	// After the error is consumed, the merge continues with the
	// remaining healthy sources.
	e, err = m.Next()
	if err != nil || e == nil || e.Collector != "good" {
		t.Fatalf("third Next = (%v, %v), want the good source's element", e, err)
	}
	if _, err := m.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("final Next err = %v, want io.EOF", err)
	}
}

// TestMergePrimingErrorKeepsHealthySources guards the priming path: a
// source failing on its very first Next must not abandon the sources
// after it — the error surfaces first, then the merge continues.
func TestMergePrimingErrorKeepsHealthySources(t *testing.T) {
	t0 := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	primeErr := errors.New("unreadable archive")
	a := &sliceStream{elems: []*Elem{{Collector: "a", Update: &bgp.Update{Time: t0}}}}
	bad := &errAfterStream{err: primeErr}
	c := &sliceStream{elems: []*Elem{{Collector: "c", Update: &bgp.Update{Time: t0.Add(time.Minute)}}}}

	m := Merge(a, bad, c)
	if _, err := m.Next(); !errors.Is(err, primeErr) {
		t.Fatalf("first Next err = %v, want priming error", err)
	}
	var got []string
	for {
		e, err := m.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected err after priming error: %v", err)
		}
		got = append(got, e.Collector)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("surviving elements = %v, want [a c]", got)
	}
}
