package stream

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

// TestLiveConcurrentPublishCloseNext races many producers, a consumer
// and an asynchronous Close against each other; run with -race (the CI
// race job does). The consumer must observe every element published
// before Close won the race, then a clean io.EOF, and never a nil
// element.
func TestLiveConcurrentPublishCloseNext(t *testing.T) {
	for round := 0; round < 20; round++ {
		l := NewLive()
		const producers = 8
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					l.Publish(&Elem{Collector: "c", Update: &bgp.Update{Time: time.Unix(int64(p*1000+i), 0)}})
				}
			}(p)
		}
		// Even rounds close after the last publish (nothing may be
		// lost); odd rounds race Close against the publishers (late
		// publishes are dropped, so only an upper bound holds).
		racingClose := round%2 == 1
		closed := make(chan struct{})
		go func() {
			defer close(closed)
			if !racingClose {
				wg.Wait()
			}
			l.Close()
		}()

		n := 0
		for {
			e, err := l.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("round %d: Next: %v", round, err)
				}
				break
			}
			if e == nil {
				t.Fatalf("round %d: nil element without error", round)
			}
			n++
		}
		wg.Wait()
		<-closed
		if n > producers*50 {
			t.Fatalf("round %d: consumed %d elements, published at most %d", round, n, producers*50)
		}
		if !racingClose && n != producers*50 {
			t.Fatalf("round %d: consumed %d of %d elements", round, n, producers*50)
		}
		// Publishing after close is a tolerated no-op.
		l.Publish(&Elem{Update: &bgp.Update{}})
		if l.Pending() != 0 {
			t.Fatalf("round %d: publish after close buffered an element", round)
		}
	}
}

// TestLiveInterruptUnblocksNext parks a consumer in Next and interrupts
// it: Next must return ErrInterrupted promptly, without waiting for the
// buffer to drain. The interrupt is consumed by that call — the stream
// stays usable, so a later run over the same feed can resume it.
func TestLiveInterruptUnblocksNext(t *testing.T) {
	l := NewLive()
	got := make(chan error, 1)
	go func() {
		_, err := l.Next()
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the consumer park
	l.Interrupt()
	select {
	case err := <-got:
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("Next = %v, want ErrInterrupted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock after Interrupt")
	}

	// Interrupt preempts buffered elements: cancellation is prompt, not
	// drain-then-stop.
	l.Publish(&Elem{Update: &bgp.Update{}})
	l.Interrupt()
	if _, err := l.Next(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Next after Interrupt = %v, want ErrInterrupted", err)
	}

	// The interrupt was consumed: the buffered element is still there
	// for the next consumer (the canceled-run-then-resume pattern).
	e, err := l.Next()
	if err != nil || e == nil {
		t.Fatalf("Next after consumed interrupt = %v, %v; want the buffered element", e, err)
	}
}

// TestLiveTickKeepsPlatformContext pins the Tick convenience: the
// published element carries the collection context and timestamp.
func TestLiveTickKeepsPlatformContext(t *testing.T) {
	l := NewLive()
	at := time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)
	l.Tick("rrc00", collector.PlatformRIS, at)
	e, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Collector != "rrc00" || e.Platform != collector.PlatformRIS || !e.Update.Time.Equal(at) {
		t.Fatalf("tick element = %+v", e)
	}
}
