package stream

// Heap is a binary min-heap over any element type, ordered by a
// caller-supplied strict less function. It backs the k-way merges in
// this package (time-ordered update streams) and in the federated
// query layer (global-order event record streams): both need the same
// pop-min / push-refill loop, and the generic form keeps the two merge
// cores literally the same code.
//
// The zero value is not usable; construct with NewHeap. Heap is not
// safe for concurrent use.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len reports the number of elements on the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Grow reserves capacity for at least n elements.
func (h *Heap[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]T, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

// Push adds x to the heap.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.siftUp(len(h.items) - 1)
}

// Peek returns the minimum element without removing it. It must not be
// called on an empty heap.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Pop removes and returns the minimum element. It must not be called
// on an empty heap.
func (h *Heap[T]) Pop() T {
	root := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references for the GC
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return root
}

// ReplaceMin replaces the minimum element with x and restores heap
// order — a Pop followed by a Push, in one sift. It must not be called
// on an empty heap.
func (h *Heap[T]) ReplaceMin(x T) {
	h.items[0] = x
	h.siftDown(0)
}

func (h *Heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(h.items[left], h.items[smallest]) {
			smallest = left
		}
		if right < n && h.less(h.items[right], h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
