package stream

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
)

var t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

func elem(name string, p collector.Platform, offset time.Duration, prefix string) *Elem {
	return &Elem{
		Collector: name,
		Platform:  p,
		Update: &bgp.Update{
			Time:      t0.Add(offset),
			Announced: []netip.Prefix{netip.MustParsePrefix(prefix)},
			Path:      bgp.NewPath(100, 200),
		},
	}
}

func TestFromElemsSortsByTime(t *testing.T) {
	s := FromElems([]*Elem{
		elem("a", collector.PlatformRIS, 3*time.Second, "31.0.0.1/32"),
		elem("a", collector.PlatformRIS, 1*time.Second, "31.0.0.2/32"),
		elem("a", collector.PlatformRIS, 2*time.Second, "31.0.0.3/32"),
	})
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Update.Time.Before(got[i-1].Update.Time) {
			t.Fatal("not time ordered")
		}
	}
}

func TestMergeInterleavesStreams(t *testing.T) {
	a := FromElems([]*Elem{
		elem("ris", collector.PlatformRIS, 1*time.Second, "31.0.0.1/32"),
		elem("ris", collector.PlatformRIS, 4*time.Second, "31.0.0.1/32"),
	})
	b := FromElems([]*Elem{
		elem("rv", collector.PlatformRV, 2*time.Second, "31.0.0.2/32"),
		elem("rv", collector.PlatformRV, 3*time.Second, "31.0.0.2/32"),
	})
	got, err := Collect(Merge(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	wantOrder := []string{"ris", "rv", "rv", "ris"}
	for i, w := range wantOrder {
		if got[i].Collector != w {
			t.Fatalf("pos %d = %s, want %s", i, got[i].Collector, w)
		}
	}
}

func TestFilters(t *testing.T) {
	elems := []*Elem{
		elem("ris", collector.PlatformRIS, 1*time.Second, "31.0.0.1/32"),
		elem("rv", collector.PlatformRV, 2*time.Second, "32.0.0.1/32"),
		elem("ris", collector.PlatformRIS, 10*time.Minute, "31.0.0.2/32"),
	}
	got, err := Collect(ByPlatform(FromElems(elems), collector.PlatformRIS))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ByPlatform len = %d", len(got))
	}

	got, err = Collect(ByTimeWindow(FromElems(elems), t0, t0.Add(time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ByTimeWindow len = %d", len(got))
	}

	got, err = Collect(ByPrefix(FromElems(elems), netip.MustParsePrefix("31.0.0.0/16")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("ByPrefix len = %d", len(got))
	}
}

func TestByPrefixMatchesWithdrawals(t *testing.T) {
	w := &Elem{Collector: "x", Update: &bgp.Update{
		Time:      t0,
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
	}}
	got, err := Collect(ByPrefix(FromElems([]*Elem{w}), netip.MustParsePrefix("31.0.0.0/16")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("withdrawal not matched")
	}
}

func TestFromMRTReplaysUpdatesAndRIBs(t *testing.T) {
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		Time:        t0,
		CollectorID: netip.MustParseAddr("22.0.0.1"),
		Peers:       []mrt.Peer{{BGPID: netip.MustParseAddr("22.0.1.1"), IP: netip.MustParseAddr("22.0.1.1"), AS: 100}},
	}
	if err := w.WritePeerIndexTable(pit); err != nil {
		t.Fatal(err)
	}
	rib := &mrt.RIB{
		Time:   t0,
		Prefix: netip.MustParsePrefix("31.0.0.1/32"),
		Entries: []mrt.RIBEntry{{
			PeerIndex:      0,
			OriginatedTime: t0.Add(-time.Hour),
			Attrs: &bgp.Update{
				Origin:      bgp.OriginIGP,
				Path:        bgp.NewPath(100, 200),
				NextHop:     netip.MustParseAddr("22.0.1.2"),
				Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
			},
		}},
	}
	if err := w.WriteRIB(rib); err != nil {
		t.Fatal(err)
	}
	u := &bgp.Update{
		Time:      t0.Add(time.Minute),
		PeerIP:    netip.MustParseAddr("22.0.1.1"),
		PeerAS:    100,
		Announced: []netip.Prefix{netip.MustParsePrefix("31.0.0.2/32")},
		Origin:    bgp.OriginIGP,
		Path:      bgp.NewPath(100, 200),
		NextHop:   netip.MustParseAddr("22.0.1.2"),
	}
	if err := w.WriteUpdate(u, netip.MustParseAddr("22.0.0.1"), 64900); err != nil {
		t.Fatal(err)
	}

	s := FromMRT(mrt.NewReader(&buf), "rrc00", collector.PlatformRIS)
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d, want RIB entry + update", len(got))
	}
	if got[0].Update.PeerAS != 100 || !got[0].Update.HasCommunity(bgp.MakeCommunity(100, 666)) {
		t.Fatalf("RIB elem = %+v", got[0].Update)
	}
	if got[1].Update.Announced[0].String() != "31.0.0.2/32" {
		t.Fatalf("update elem = %+v", got[1].Update)
	}
}

func TestMergeEmptyStreams(t *testing.T) {
	got, err := Collect(Merge(FromElems(nil), FromElems(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty merge")
	}
}
