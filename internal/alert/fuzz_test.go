package alert

import "testing"

// FuzzParseRule asserts two properties on arbitrary input: the parser
// never panics, and any accepted rule renders to a canonical form that
// reparses to the same canonical form (parse/format round-trip).
func FuzzParseRule(f *testing.F) {
	f.Add("name=a")
	f.Add("name=dc prefix=10.1.0.0/16,10.2.0.0/16 mode=covered")
	f.Add("name=x prefix=10.0.0.1 mode=lpm origin=65001,65002 provider=AS3356,ixp:4")
	f.Add("name=x community=3356:9999,65535:666 min-duration=90s verdict=illegitimate,questionable")
	f.Add("name=v6 prefix=2001:db8::/32 mode=covered")
	f.Add("name=a name=a")
	f.Add("prefix=10.0.0.0/8")
	f.Add("name=a min-duration=-1s")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRule(s)
		if err != nil {
			return
		}
		canon := r.String()
		r2, err := ParseRule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
		}
		if got := r2.String(); got != canon {
			t.Fatalf("round trip unstable: %q -> %q -> %q", s, canon, got)
		}
	})
}
