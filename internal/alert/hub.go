// The Hub is the delivery half of the alerting subsystem: the detector
// pushes closed events in (Publish), the compiled rule index decides
// which rules fire, and matching alerts fan out to SSE watchers and
// registered webhooks. Publish never blocks on a consumer — watchers
// ride bounded drop-oldest queues (the detector's backpressure
// discipline) and webhooks ride bounded channels — so a stalled
// subscriber can never stall inference.
package alert

import (
	"encoding/json"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/enrich"
)

// Alert is one rule firing on one closed event. The payload is
// encoded lazily, at most once, on the first delivery that needs it;
// every delivery path (SSE, webhook, replay ring) then shares the same
// bytes, and a hub with no subscribers never pays the encode.
type Alert struct {
	// ID is monotonic across the hub's lifetime, starting at 1. SSE
	// clients resume with it via Last-Event-ID.
	ID   uint64
	Rule string
	// Event is the closed event that fired the rule. Immutable.
	Event *core.Event
	// Ann is the detection-time legitimacy annotation, nil when the hub
	// has no annotator.
	Ann *enrich.Annotation

	encode  func(*Alert) ([]byte, error)
	onErr   func()
	once    sync.Once
	payload []byte
}

// Payload returns the encoded JSON body, encoding on first use. It is
// safe for concurrent delivery paths; on an encode error it returns
// nil (counted in the hub's EncodeErrors) and the alert is skipped by
// every delivery path.
func (a *Alert) Payload() []byte {
	a.once.Do(func() {
		var err error
		a.payload, err = a.encode(a)
		if err != nil {
			a.payload = nil
			if a.onErr != nil {
				a.onErr()
			}
		}
	})
	return a.payload
}

// Config parameterizes a Hub. The zero value is usable: no enrichment,
// the default wire encoding, a 1024-alert replay ring and 256-alert
// watcher queues.
type Config struct {
	// Annotator, when set, computes the legitimacy verdict of each
	// closing event on the live path (AnnotateUncached semantics) so
	// verdict-conditioned rules fire on the stream; the result is primed
	// back into the annotator's cache so the query path serves the same
	// verdict. Without it, verdict-conditioned rules never match.
	Annotator *enrich.Annotator
	// Encode overrides the alert wire encoding (the facade installs the
	// full event-record shape here). Defaults to EncodeAlert.
	Encode func(*Alert) ([]byte, error)
	// RingSize bounds the replay ring for Last-Event-ID resume.
	// Default 1024.
	RingSize int
	// WatchBound bounds each watcher's pending queue; the oldest alert
	// is dropped (and counted) when a slow client lets it fill.
	// Default 256.
	WatchBound int
}

const (
	defaultRingSize   = 1024
	defaultWatchBound = 256
)

// Hub matches closing events against a compiled rule set and fans the
// resulting alerts out to watchers and webhooks. All methods are safe
// for concurrent use; Publish is expected from one goroutine (the
// detector sink) but is serialized regardless.
type Hub struct {
	cfg Config

	mu       sync.Mutex
	ix       *Index
	ring     []*Alert // circular
	ringHead int      // index of oldest
	ringLen  int
	nextID   uint64
	watchers []*Watcher
	closed   bool

	published   atomic.Uint64 // events seen
	alerts      atomic.Uint64 // alerts emitted
	encodeErrs  atomic.Uint64
	closedDrops uint64 // drops of since-removed watchers; under mu

	webhooks []*webhook
	wg       sync.WaitGroup
	stop     chan struct{}

	// onEncodeErr is the shared lazy-encode error hook, allocated once
	// rather than per alert.
	onEncodeErr func()

	// publishObs, when set, receives each Publish call's wall time in
	// seconds — the telemetry layer's latency-histogram hook. Held in
	// an atomic pointer so it can be wired after the hub is live.
	publishObs atomic.Pointer[func(float64)]
}

// SetPublishObserver installs fn to observe each Publish call's
// duration in seconds (nil removes it). Safe to call while the hub is
// publishing.
func (h *Hub) SetPublishObserver(fn func(seconds float64)) {
	if fn == nil {
		h.publishObs.Store(nil)
		return
	}
	h.publishObs.Store(&fn)
}

// NewHub builds a hub over an initial rule set (which may be empty and
// replaced later via SetRules).
func NewHub(rules []Rule, cfg Config) (*Hub, error) {
	ix, err := Compile(rules)
	if err != nil {
		return nil, err
	}
	if cfg.Encode == nil {
		cfg.Encode = EncodeAlert
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	if cfg.WatchBound <= 0 {
		cfg.WatchBound = defaultWatchBound
	}
	h := &Hub{
		cfg:  cfg,
		ix:   ix,
		ring: make([]*Alert, cfg.RingSize),
		stop: make(chan struct{}),
	}
	h.onEncodeErr = func() { h.encodeErrs.Add(1) }
	return h, nil
}

// Rules returns the current rules in compile order.
func (h *Hub) Rules() []Rule {
	h.mu.Lock()
	defer h.mu.Unlock()
	return slices.Clone(h.ix.Rules())
}

// SetRules atomically replaces the whole rule set.
func (h *Hub) SetRules(rules []Rule) error {
	ix, err := Compile(rules)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.ix = ix
	h.mu.Unlock()
	return nil
}

// UpsertRule adds or replaces one rule by name.
func (h *Hub) UpsertRule(r Rule) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	rules := slices.Clone(h.ix.Rules())
	replaced := false
	for i := range rules {
		if rules[i].Name == r.Name {
			rules[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		rules = append(rules, r)
	}
	ix, err := Compile(rules)
	if err != nil {
		return err
	}
	h.ix = ix
	return nil
}

// DeleteRule removes one rule by name; it reports whether the rule
// existed.
func (h *Hub) DeleteRule(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	rules := h.ix.Rules()
	i := slices.IndexFunc(rules, func(r Rule) bool { return r.Name == name })
	if i < 0 {
		return false
	}
	rest := slices.Delete(slices.Clone(rules), i, i+1)
	ix, err := Compile(rest)
	if err != nil {
		// Removing a rule cannot invalidate the remainder.
		panic(fmt.Sprintf("alert: recompile after delete: %v", err))
	}
	h.ix = ix
	return true
}

// Publish evaluates one closed event against the rule set and fans out
// every match. It never blocks on a subscriber. When the hub has an
// annotator, the event's legitimacy is computed here (at most once,
// and only if some rule needs it or priming is on for all events) and
// primed into the annotator cache.
func (h *Hub) Publish(ev *core.Event) {
	h.published.Add(1)
	if obs := h.publishObs.Load(); obs != nil {
		start := time.Now()
		defer func() { (*obs)(time.Since(start).Seconds()) }()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	var ann *enrich.Annotation
	verdict := func() string {
		if h.cfg.Annotator == nil {
			return ""
		}
		if ann == nil {
			a := h.cfg.Annotator.AnnotateUncached(ev)
			ann = &a
		}
		return ann.Legitimacy
	}
	var vf func() string
	if h.cfg.Annotator != nil {
		vf = verdict
	}
	ords := h.ix.Match(ev, vf)
	if len(ords) == 0 {
		return
	}
	// At least one rule fired: compute (or reuse) the annotation so the
	// alert carries the verdict, and prime the query path with it.
	if h.cfg.Annotator != nil {
		verdict()
		h.cfg.Annotator.Prime(ev, *ann)
	}
	rules := h.ix.Rules()
	for _, ord := range ords {
		h.nextID++
		a := &Alert{
			ID: h.nextID, Rule: rules[ord].Name, Event: ev, Ann: ann,
			encode: h.cfg.Encode,
			onErr:  h.onEncodeErr,
		}
		h.alerts.Add(1)
		h.ringPush(a)
		for _, w := range h.watchers {
			w.offer(a)
		}
		for _, wh := range h.webhooks {
			wh.offer(a)
		}
	}
}

// ringPush appends under h.mu, evicting the oldest entry when full.
func (h *Hub) ringPush(a *Alert) {
	if h.ringLen < len(h.ring) {
		h.ring[(h.ringHead+h.ringLen)%len(h.ring)] = a
		h.ringLen++
		return
	}
	h.ring[h.ringHead] = a
	h.ringHead = (h.ringHead + 1) % len(h.ring)
}

// Close stops the hub: watchers are cancelled, webhook queues are
// drained-and-closed, and in-flight webhook retries are abandoned.
// Publish becomes a no-op.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	watchers := slices.Clone(h.watchers)
	h.watchers = nil
	webhooks := h.webhooks
	close(h.stop)
	h.mu.Unlock()
	for _, w := range watchers {
		w.cancel()
	}
	for _, wh := range webhooks {
		close(wh.q)
	}
	h.wg.Wait()
}

// Stats is the hub's observability snapshot, embedded in the HTTP
// /stats detector section.
type Stats struct {
	// Published counts events evaluated; Alerts counts rule firings.
	Published uint64 `json:"published"`
	Alerts    uint64 `json:"alerts"`
	Rules     int    `json:"rules"`
	Watchers  int    `json:"watchers"`
	// WatcherDrops counts alerts dropped at slow watchers (live and
	// since-closed), the hub-side analogue of detector subscriber drops.
	WatcherDrops uint64         `json:"watcher_drops"`
	EncodeErrors uint64         `json:"encode_errors,omitempty"`
	Webhooks     []WebhookStats `json:"webhooks,omitempty"`
}

// Stats returns a point-in-time snapshot.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Stats{
		Published:    h.published.Load(),
		Alerts:       h.alerts.Load(),
		Rules:        len(h.ix.Rules()),
		Watchers:     len(h.watchers),
		WatcherDrops: h.closedDrops,
		EncodeErrors: h.encodeErrs.Load(),
	}
	for _, w := range h.watchers {
		s.WatcherDrops += w.drops.Load()
	}
	for _, wh := range h.webhooks {
		s.Webhooks = append(s.Webhooks, wh.stats())
	}
	return s
}

// Watch registers an SSE-style subscriber. ruleNames filters the
// stream to those rules (every name must exist); nil or empty means
// all rules. lastID replays any ringed alerts with ID > lastID before
// live delivery — the Last-Event-ID contract. The caller must drain
// C() and Close() the watcher when done.
func (h *Hub) Watch(ruleNames []string, lastID uint64) (*Watcher, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("alert: hub closed")
	}
	var filter map[string]bool
	if len(ruleNames) > 0 {
		known := map[string]bool{}
		for _, r := range h.ix.Rules() {
			known[r.Name] = true
		}
		filter = make(map[string]bool, len(ruleNames))
		for _, n := range ruleNames {
			if !known[n] {
				return nil, &UnknownRuleError{Name: n}
			}
			filter[n] = true
		}
	}
	w := newWatcher(h, filter, h.cfg.WatchBound)
	// Replay from the ring first, still under h.mu, so no alert
	// published between replay and registration can be missed.
	for i := 0; i < h.ringLen; i++ {
		a := h.ring[(h.ringHead+i)%len(h.ring)]
		if a.ID > lastID {
			w.offer(a)
		}
	}
	h.watchers = append(h.watchers, w)
	return w, nil
}

// UnknownRuleError reports a /watch filter naming a rule that does not
// exist.
type UnknownRuleError struct{ Name string }

func (e *UnknownRuleError) Error() string { return "unknown rule " + e.Name }

func (h *Hub) removeWatcher(w *Watcher) {
	h.mu.Lock()
	if i := slices.Index(h.watchers, w); i >= 0 {
		h.watchers = slices.Delete(h.watchers, i, i+1)
		h.closedDrops += w.drops.Load()
	}
	h.mu.Unlock()
}

// Watcher is one /watch subscriber: a bounded drop-oldest queue pumped
// into a channel, mirroring the detector's slow-consumer discipline so
// a stalled SSE client holds at most WatchBound+O(1) alerts and never
// backpressures Publish.
type Watcher struct {
	hub    *Hub
	filter map[string]bool // nil = all rules
	bound  int
	drops  atomic.Uint64

	mu    sync.Mutex
	cond  *sync.Cond
	queue []*Alert
	done  bool

	stop     chan struct{}
	stopOnce sync.Once
	ch       chan *Alert
}

func newWatcher(h *Hub, filter map[string]bool, bound int) *Watcher {
	w := &Watcher{
		hub:    h,
		filter: filter,
		bound:  bound,
		stop:   make(chan struct{}),
		ch:     make(chan *Alert, 16),
	}
	w.cond = sync.NewCond(&w.mu)
	h.wg.Add(1)
	go w.pump()
	return w
}

// C delivers matching alerts in publish order. It is closed after
// Close (or hub shutdown).
func (w *Watcher) C() <-chan *Alert { return w.ch }

// Drops reports alerts discarded because this watcher fell behind.
func (w *Watcher) Drops() uint64 { return w.drops.Load() }

// offer enqueues without blocking, evicting the oldest pending alert
// on overflow.
func (w *Watcher) offer(a *Alert) {
	if w.filter != nil && !w.filter[a.Rule] {
		return
	}
	w.mu.Lock()
	if w.done {
		w.mu.Unlock()
		return
	}
	if len(w.queue) >= w.bound {
		copy(w.queue, w.queue[1:])
		w.queue = w.queue[:len(w.queue)-1]
		w.drops.Add(1)
	}
	w.queue = append(w.queue, a)
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *Watcher) pump() {
	defer w.hub.wg.Done()
	defer close(w.ch)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.done {
			w.cond.Wait()
		}
		if w.done {
			w.mu.Unlock()
			return
		}
		a := w.queue[0]
		w.queue[0] = nil
		w.queue = w.queue[1:]
		w.mu.Unlock()
		select {
		case w.ch <- a:
		case <-w.stop:
			return
		}
	}
}

// Close deregisters the watcher and stops delivery immediately;
// pending alerts are discarded (a resuming client replays them by ID).
func (w *Watcher) Close() {
	w.hub.removeWatcher(w)
	w.cancel()
}

func (w *Watcher) cancel() {
	w.stopOnce.Do(func() {
		w.mu.Lock()
		w.done = true
		w.mu.Unlock()
		w.cond.Signal()
		close(w.stop)
	})
}

// alertWire is the default wire shape — a compact summary. The facade
// installs a richer encoder carrying the full event record; both keep
// the id/rule envelope so clients can rely on it.
type alertWire struct {
	ID          uint64  `json:"id"`
	Rule        string  `json:"rule"`
	Prefix      string  `json:"prefix"`
	Start       string  `json:"start"`
	End         string  `json:"end"`
	DurationSec float64 `json:"duration_sec"`
	Legitimacy  string  `json:"legitimacy,omitempty"`
}

// EncodeAlert is the default Config.Encode: a compact JSON summary of
// the alert (id, rule, prefix, window, verdict).
func EncodeAlert(a *Alert) ([]byte, error) {
	w := alertWire{
		ID:          a.ID,
		Rule:        a.Rule,
		Prefix:      a.Event.Prefix.String(),
		Start:       a.Event.Start.UTC().Format(time.RFC3339),
		End:         a.Event.End.UTC().Format(time.RFC3339),
		DurationSec: a.Event.Duration().Seconds(),
	}
	if a.Ann != nil {
		w.Legitimacy = a.Ann.Legitimacy
	}
	return json.Marshal(w)
}
