package alert

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bgpblackholing/internal/enrich"
)

func testHub(t *testing.T, cfg Config, specs ...string) *Hub {
	t.Helper()
	h, err := NewHub(mustRules(t, specs...), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func TestHubWatchOrderAndIDs(t *testing.T) {
	h := testHub(t, Config{},
		"name=all",
		"name=sub prefix=10.0.0.0/8 mode=covered",
	)
	w, err := h.Watch(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 5; i++ {
		h.Publish(testEvent(fmt.Sprintf("10.0.0.%d/32", i+1), time.Minute, nil, nil, nil))
	}
	// Each event fires both rules: 10 alerts with ids 1..10, in order.
	var last uint64
	for i := 0; i < 10; i++ {
		select {
		case a := <-w.C():
			if a.ID != last+1 {
				t.Fatalf("alert %d: id %d, want %d", i, a.ID, last+1)
			}
			last = a.ID
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at alert %d", i)
		}
	}
	s := h.Stats()
	if s.Published != 5 || s.Alerts != 10 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestHubWatchRuleFilterAndUnknown(t *testing.T) {
	h := testHub(t, Config{}, "name=a", "name=b")
	if _, err := h.Watch([]string{"nope"}, 0); err == nil {
		t.Fatal("unknown rule accepted")
	}
	w, err := h.Watch([]string{"b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))
	a := <-w.C()
	if a.Rule != "b" {
		t.Fatalf("filtered watcher got rule %q", a.Rule)
	}
	select {
	case a := <-w.C():
		t.Fatalf("unexpected second alert %q", a.Rule)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHubReplayResume(t *testing.T) {
	h := testHub(t, Config{RingSize: 8}, "name=all")
	for i := 0; i < 5; i++ {
		h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))
	}
	// Resume from id 2: ids 3, 4, 5 replay from the ring.
	w, err := h.Watch(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for want := uint64(3); want <= 5; want++ {
		select {
		case a := <-w.C():
			if a.ID != want {
				t.Fatalf("resume got id %d, want %d", a.ID, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for id %d", want)
		}
	}
	// And live delivery continues after the replay.
	h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))
	if a := <-w.C(); a.ID != 6 {
		t.Fatalf("live after resume: id %d, want 6", a.ID)
	}
}

func TestHubRingEviction(t *testing.T) {
	h := testHub(t, Config{RingSize: 4}, "name=all")
	for i := 0; i < 10; i++ {
		h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))
	}
	// Only the last 4 alerts (ids 7-10) survive in the ring.
	w, err := h.Watch(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if a := <-w.C(); a.ID != 7 {
		t.Fatalf("ring head id %d, want 7", a.ID)
	}
}

func TestHubStalledWatcherBounded(t *testing.T) {
	const bound = 8
	h := testHub(t, Config{WatchBound: bound}, "name=all")
	w, err := h.Watch(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Publish far more than the watcher bound without reading: Publish
	// must never block, the backlog stays bounded, and drops count.
	const n = 500
	donePub := make(chan struct{})
	go func() {
		defer close(donePub)
		for i := 0; i < n; i++ {
			h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))
		}
	}()
	select {
	case <-donePub:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on a stalled watcher")
	}
	if w.Drops() == 0 {
		t.Fatal("stalled watcher recorded no drops")
	}
	// The watcher can hold at most bound (queue) + the pump channel's
	// capacity + one in flight.
	held := 0
	deadline := time.After(2 * time.Second)
drain:
	for {
		select {
		case <-w.C():
			held++
		case <-deadline:
			break drain
		default:
			if held > 0 {
				break drain
			}
		}
	}
	if held > bound+17 {
		t.Fatalf("stalled watcher held %d alerts, want <= %d", held, bound+17)
	}
	if s := h.Stats(); s.WatcherDrops != w.Drops() {
		t.Fatalf("stats drops %d != watcher drops %d", s.WatcherDrops, w.Drops())
	}
}

func TestHubRulesCRUD(t *testing.T) {
	h := testHub(t, Config{}, "name=a")
	if err := h.UpsertRule(mustRules(t, "name=b origin=65001")[0]); err != nil {
		t.Fatal(err)
	}
	if got := h.Rules(); len(got) != 2 {
		t.Fatalf("rules after upsert: %v", got)
	}
	// Replace by name.
	if err := h.UpsertRule(mustRules(t, "name=b origin=65002")[0]); err != nil {
		t.Fatal(err)
	}
	if got := h.Rules(); len(got) != 2 || got[1].Origins[0] != 65002 {
		t.Fatalf("rules after replace: %v", got)
	}
	if !h.DeleteRule("a") || h.DeleteRule("a") {
		t.Fatal("delete semantics")
	}
	if err := h.SetRules(mustRules(t, "name=x", "name=y")); err != nil {
		t.Fatal(err)
	}
	if got := h.Rules(); len(got) != 2 || got[0].Name != "x" {
		t.Fatalf("rules after set: %v", got)
	}
}

func TestWebhookRetryAndDeadLetter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Fail the first two deliveries, accept from the third on.
		if hits.Add(1) <= 2 {
			http.Error(w, "try again", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	h := testHub(t, Config{}, "name=all")
	if err := h.AddWebhook(srv.URL, WebhookConfig{BaseBackoff: time.Millisecond, MaxAttempts: 5}); err != nil {
		t.Fatal(err)
	}
	h.Publish(testEvent("10.0.0.1/32", time.Minute, nil, nil, nil))

	waitFor(t, func() bool {
		s := h.Stats()
		return len(s.Webhooks) == 1 && s.Webhooks[0].Delivered == 1
	}, "delivery after retries")
	ws := h.Stats().Webhooks[0]
	if ws.Retries != 2 || ws.DeadLetters != 0 {
		t.Fatalf("webhook stats: %+v", ws)
	}

	// A permanently failing endpoint dead-letters after MaxAttempts.
	var always atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		always.Add(1)
		http.Error(w, "no", http.StatusBadGateway)
	}))
	defer bad.Close()
	if err := h.AddWebhook(bad.URL, WebhookConfig{BaseBackoff: time.Millisecond, MaxAttempts: 3}); err != nil {
		t.Fatal(err)
	}
	h.Publish(testEvent("10.0.0.2/32", time.Minute, nil, nil, nil))
	waitFor(t, func() bool {
		for _, ws := range h.Stats().Webhooks {
			if ws.URL == bad.URL && ws.DeadLetters == 1 {
				return true
			}
		}
		return false
	}, "dead letter")
	if got := always.Load(); got != 3 {
		t.Fatalf("failing endpoint hit %d times, want 3", got)
	}
}

func TestHubDetectionTimeEnrichment(t *testing.T) {
	// A nil-world annotator always answers "legitimate" — enough to
	// prove verdict-conditioned matching and cache priming.
	ann := enrich.New(nil, nil)
	h := testHub(t, Config{Annotator: ann},
		"name=ok verdict=legitimate",
		"name=bad verdict=illegitimate",
	)
	w, err := h.Watch(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev := testEvent("10.0.0.1/32", time.Minute, nil, nil, nil)
	h.Publish(ev)
	a := <-w.C()
	if a.Rule != "ok" {
		t.Fatalf("verdict rule: got %q", a.Rule)
	}
	if a.Ann == nil || a.Ann.Legitimacy != enrich.VerdictLegitimate {
		t.Fatalf("alert annotation: %+v", a.Ann)
	}
	// The verdict was primed into the annotator cache: Annotate must
	// serve it without recomputation (same pointer identity semantics).
	if got := ann.Annotate(ev); got.Legitimacy != enrich.VerdictLegitimate {
		t.Fatalf("primed cache verdict: %q", got.Legitimacy)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
