package alert

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// WebhookConfig parameterizes one webhook registration. The zero value
// gives 5 attempts, 100ms base backoff, a 10s request timeout, and a
// 256-alert queue.
type WebhookConfig struct {
	// Client overrides the HTTP client (tests inject an httptest-bound
	// one). Defaults to a client with Timeout.
	Client *http.Client
	// MaxAttempts bounds delivery attempts per alert; an alert that
	// exhausts them is dead-lettered (counted, then dropped — at-least-
	// once only up to this bound). Default 5.
	MaxAttempts int
	// BaseBackoff is the first retry delay; each retry doubles it, with
	// ±50% jitter. Default 100ms.
	BaseBackoff time.Duration
	// Timeout applies per request when Client is nil. Default 10s.
	Timeout time.Duration
	// QueueBound bounds the per-webhook pending queue; on overflow the
	// newest alert is dropped and counted. Default 256.
	QueueBound int
}

type webhook struct {
	url  string
	cfg  WebhookConfig
	q    chan *Alert
	stop <-chan struct{}

	delivered   atomic.Uint64
	retries     atomic.Uint64
	deadLetters atomic.Uint64
	dropped     atomic.Uint64
}

// WebhookStats is the delivery ledger for one registered webhook.
type WebhookStats struct {
	URL string `json:"url"`
	// Queued is the current backlog.
	Queued int `json:"queued"`
	// Delivered counts alerts acknowledged with a 2xx.
	Delivered uint64 `json:"delivered"`
	// Retries counts re-attempts after a failed delivery.
	Retries uint64 `json:"retries"`
	// DeadLetters counts alerts abandoned after MaxAttempts failures.
	DeadLetters uint64 `json:"dead_letters"`
	// Dropped counts alerts discarded on queue overflow.
	Dropped uint64 `json:"dropped"`
}

func (w *webhook) stats() WebhookStats {
	return WebhookStats{
		URL:         w.url,
		Queued:      len(w.q),
		Delivered:   w.delivered.Load(),
		Retries:     w.retries.Load(),
		DeadLetters: w.deadLetters.Load(),
		Dropped:     w.dropped.Load(),
	}
}

// AddWebhook registers a webhook endpoint: every matched alert is
// POSTed to url as JSON (the alert payload), with at-least-once
// delivery up to MaxAttempts and jittered exponential backoff between
// attempts. Delivery runs on its own goroutine per webhook, so a slow
// or dead endpoint costs a bounded queue, never inference time.
func (h *Hub) AddWebhook(url string, cfg WebhookConfig) error {
	if url == "" {
		return fmt.Errorf("alert: empty webhook url")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 256
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("alert: hub closed")
	}
	w := &webhook{
		url:  url,
		cfg:  cfg,
		q:    make(chan *Alert, cfg.QueueBound),
		stop: h.stop,
	}
	h.webhooks = append(h.webhooks, w)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		w.run()
	}()
	return nil
}

// offer enqueues without blocking; overflow drops the alert (counted).
// Called under h.mu, so it can never race the close(w.q) in Hub.Close.
func (w *webhook) offer(a *Alert) {
	select {
	case w.q <- a:
	default:
		w.dropped.Add(1)
	}
}

func (w *webhook) run() {
	for a := range w.q {
		if !w.deliver(a) {
			return // hub shut down mid-backoff
		}
	}
}

// deliver POSTs one alert, retrying with jittered exponential backoff.
// It returns false only when the hub stopped while waiting to retry.
func (w *webhook) deliver(a *Alert) bool {
	if a.Payload() == nil {
		return true // encode error, already counted by the hub
	}
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			w.retries.Add(1)
			if !w.sleep(backoff(w.cfg.BaseBackoff, attempt)) {
				return false
			}
		}
		if w.post(a) {
			w.delivered.Add(1)
			return true
		}
	}
	w.deadLetters.Add(1)
	return true
}

// post attempts one delivery; true on a 2xx.
func (w *webhook) post(a *Alert) bool {
	req, err := http.NewRequest(http.MethodPost, w.url, bytes.NewReader(a.Payload()))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Alert-ID", strconv.FormatUint(a.ID, 10))
	req.Header.Set("X-Alert-Rule", a.Rule)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// sleep waits d or until hub shutdown; false means shutdown.
func (w *webhook) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.stop:
		return false
	}
}

// backoff computes the delay before retry `attempt` (1-based):
// base·2^(attempt-1), jittered ±50% so synchronized failures don't
// retry in lockstep.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}
