package alert

import (
	"encoding/json"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule("name=dc prefix=10.2.0.0/16,10.1.0.0/16 mode=covered origin=65002,65001 provider=AS3356,ixp:4 community=3356:9999 min-duration=90s verdict=questionable,illegitimate")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "dc" || r.Mode != ModeCovered {
		t.Fatalf("name/mode: %+v", r)
	}
	if len(r.Prefixes) != 2 || r.Prefixes[0] != netip.MustParsePrefix("10.1.0.0/16") {
		t.Fatalf("prefixes not sorted: %v", r.Prefixes)
	}
	if len(r.Origins) != 2 || r.Origins[0] != 65001 {
		t.Fatalf("origins not sorted: %v", r.Origins)
	}
	if len(r.Providers) != 2 || len(r.Communities) != 1 {
		t.Fatalf("providers/communities: %+v", r)
	}
	if r.MinDuration != 90*time.Second {
		t.Fatalf("min-duration: %v", r.MinDuration)
	}
	if len(r.Verdicts) != 2 || r.Verdicts[0] != "illegitimate" {
		t.Fatalf("verdicts not sorted: %v", r.Verdicts)
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, bad := range []string{
		"",                              // no name
		"prefix=10.0.0.0/8",             // no name
		"name=a name=b",                 // duplicate key
		"name=a bogus=1",                // unknown key
		"name=a prefix=nonsense",        // bad prefix
		"name=a mode=upward",            // bad mode
		"name=a origin=xyz",             // bad ASN
		"name=a verdict=maybe",          // bad verdict
		"name=a min-duration=-5s",       // negative duration
		"name=a min-duration=yesterday", // bad duration
		"name=a,b",                      // comma in name
		"name=a prefix=",                // empty value
	} {
		if _, err := ParseRule(bad); err == nil {
			t.Errorf("ParseRule(%q): expected error", bad)
		}
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"name=a",
		"name=a prefix=10.0.0.1 mode=lpm",
		"name=a prefix=10.1.2.0/24 mode=covered origin=65001 min-duration=1m30s",
		"name=a provider=ixp:4,AS3356 community=65535:666 verdict=illegitimate",
	} {
		r, err := ParseRule(src)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", src, err)
		}
		s := r.String()
		r2, err := ParseRule(s)
		if err != nil {
			t.Fatalf("reparse %q: %v", s, err)
		}
		if got := r2.String(); got != s {
			t.Fatalf("round trip: %q -> %q", s, got)
		}
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	r, err := ParseRule("name=dc prefix=10.1.0.0/16 mode=covered origin=65001 verdict=questionable min-duration=90s")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var r2 Rule
	if err := json.Unmarshal(data, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.String() != r.String() {
		t.Fatalf("JSON round trip: %q -> %q", r.String(), r2.String())
	}
	// A JSON rule failing validation must not unmarshal.
	if err := json.Unmarshal([]byte(`{"name":"x","verdicts":["maybe"]}`), &r2); err == nil {
		t.Fatal("bad verdict unmarshalled")
	}
}

// testEvent builds a closed event for match tests.
func testEvent(prefix string, dur time.Duration, users []uint32, provs []core.ProviderRef, comms []string) *core.Event {
	start := time.Date(2016, 9, 20, 12, 0, 0, 0, time.UTC)
	ev := &core.Event{
		Prefix:      netip.MustParsePrefix(prefix),
		Start:       start,
		End:         start.Add(dur),
		Providers:   map[core.ProviderRef]bool{},
		Users:       map[bgp.ASN]bool{},
		Communities: map[bgp.Community]bool{},
	}
	for _, u := range users {
		ev.Users[bgp.ASN(u)] = true
	}
	for _, p := range provs {
		ev.Providers[p] = true
	}
	for _, c := range comms {
		cc, err := bgp.ParseCommunity(c)
		if err != nil {
			panic(err)
		}
		ev.Communities[cc] = true
	}
	return ev
}

func mustRules(t *testing.T, specs ...string) []Rule {
	t.Helper()
	out := make([]Rule, len(specs))
	for i, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", s, err)
		}
		out[i] = r
	}
	return out
}

func matchNames(ix *Index, ev *core.Event, verdict func() string) []string {
	var out []string
	for _, ord := range ix.Match(ev, verdict) {
		out = append(out, ix.Rules()[ord].Name)
	}
	return out
}

func TestIndexMatchModes(t *testing.T) {
	ix, err := Compile(mustRules(t,
		"name=exact prefix=10.1.2.3/32 mode=exact",
		"name=covered prefix=10.1.0.0/16 mode=covered",
		"name=lpm prefix=10.1.2.3/32 mode=lpm",
		"name=other prefix=192.168.0.0/16 mode=covered",
	))
	if err != nil {
		t.Fatal(err)
	}

	got := matchNames(ix, testEvent("10.1.2.3/32", time.Minute, nil, nil, nil), nil)
	want := []string{"exact", "covered", "lpm"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("host event matched %v, want %v", got, want)
	}

	// A /24 inside 10.1/16 covering the lpm target: no exact match.
	got = matchNames(ix, testEvent("10.1.2.0/24", time.Minute, nil, nil, nil), nil)
	if len(got) != 2 || got[0] != "covered" || got[1] != "lpm" {
		t.Fatalf("/24 event matched %v", got)
	}

	// Outside every rule prefix.
	if got = matchNames(ix, testEvent("172.16.0.1/32", time.Minute, nil, nil, nil), nil); got != nil {
		t.Fatalf("unrelated event matched %v", got)
	}
}

func TestIndexMatchDimensions(t *testing.T) {
	ix, err := Compile(mustRules(t,
		"name=byorigin origin=65001",
		"name=byprovider provider=AS3356",
		"name=bycomm community=3356:9999",
		"name=longonly min-duration=1h",
		"name=all",
	))
	if err != nil {
		t.Fatal(err)
	}
	provider := core.ProviderRef{Kind: core.ProviderAS, ASN: 3356}

	ev := testEvent("10.0.0.1/32", time.Minute, []uint32{65001}, []core.ProviderRef{provider}, []string{"3356:9999"})
	got := matchNames(ix, ev, nil)
	if len(got) != 4 || got[3] != "all" {
		t.Fatalf("matched %v", got)
	}

	// Long event picks up the duration rule too.
	ev = testEvent("10.0.0.1/32", 2*time.Hour, []uint32{65001}, []core.ProviderRef{provider}, []string{"3356:9999"})
	if got = matchNames(ix, ev, nil); len(got) != 5 {
		t.Fatalf("long event matched %v", got)
	}

	// Nothing but the unconstrained rule.
	ev = testEvent("10.0.0.1/32", time.Minute, []uint32{64999}, nil, nil)
	if got = matchNames(ix, ev, nil); len(got) != 1 || got[0] != "all" {
		t.Fatalf("bare event matched %v", got)
	}
}

func TestIndexVerdictLazy(t *testing.T) {
	ix, err := Compile(mustRules(t,
		"name=bad verdict=illegitimate",
		"name=sus verdict=questionable,illegitimate",
		"name=all",
	))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.NeedsVerdict() {
		t.Fatal("NeedsVerdict = false")
	}
	ev := testEvent("10.0.0.1/32", time.Minute, nil, nil, nil)

	calls := 0
	verdict := func() string { calls++; return "illegitimate" }
	got := matchNames(ix, ev, verdict)
	if len(got) != 3 {
		t.Fatalf("matched %v", got)
	}
	if calls != 1 {
		t.Fatalf("verdict computed %d times, want 1 (lazy, memoized)", calls)
	}

	// Legitimate event: only the unconstrained rule.
	got = matchNames(ix, ev, func() string { return "legitimate" })
	if len(got) != 1 || got[0] != "all" {
		t.Fatalf("legitimate event matched %v", got)
	}

	// No verdict source: verdict-conditioned rules never fire.
	got = matchNames(ix, ev, nil)
	if len(got) != 1 || got[0] != "all" {
		t.Fatalf("nil-verdict matched %v", got)
	}
}

func TestCompileRejectsDuplicates(t *testing.T) {
	_, err := Compile(mustRules(t, "name=a", "name=a"))
	if err == nil {
		t.Fatal("duplicate names compiled")
	}
}

func TestIndexDedupesAcrossPrefixes(t *testing.T) {
	// One rule, two nested prefixes both covering the event: the rule
	// must fire once, not twice.
	ix, err := Compile(mustRules(t, "name=a prefix=10.0.0.0/8,10.1.0.0/16 mode=covered"))
	if err != nil {
		t.Fatal(err)
	}
	got := ix.Match(testEvent("10.1.2.3/32", time.Minute, nil, nil, nil), nil)
	if len(got) != 1 {
		t.Fatalf("matched ordinals %v, want exactly one", got)
	}
}
