// Package alert is the detection-time alerting hub: user-defined rules
// are compiled once into an index (prefix sets in a patricia trie,
// origin postings, a residual list) and evaluated against live events
// the moment they close, and matching alerts fan out to SSE watchers
// and registered webhooks. It turns the passive longitudinal store into
// an operational surface — the paper's whole point is that community
// observation makes blackholing actionable, and an event nobody is told
// about is not actionable.
//
// The package deliberately mirrors the query API's vocabulary: a rule
// constrains the same dimensions a store query filters on (prefix +
// match mode, origin ASN, provider, community, duration) plus the
// enrichment verdict, so an operator can turn any saved query into a
// standing alert.
package alert

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"slices"
	"strconv"
	"strings"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/enrich"
)

// Mode selects how a rule's prefix set matches an event's prefix.
type Mode int

const (
	// ModeExact fires when the event's prefix equals one of the rule's
	// prefixes.
	ModeExact Mode = iota
	// ModeCovered fires when the event's prefix lies inside one of the
	// rule's prefixes — "alert on anything blackholed in my /16".
	ModeCovered
	// ModeLPM fires when the event's prefix contains one of the rule's
	// prefixes — the bhquery "-mode lpm" shape on the stream: "who
	// blackholes my address", including via a covering aggregate.
	ModeLPM
)

// String renders the mode in the rule syntax's vocabulary.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeCovered:
		return "covered"
	case ModeLPM:
		return "lpm"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses a match-mode name.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "exact":
		return ModeExact, nil
	case "covered":
		return ModeCovered, nil
	case "lpm":
		return ModeLPM, nil
	}
	return ModeExact, fmt.Errorf("bad match mode %q (want exact, covered or lpm)", s)
}

// Rule is one standing alert definition. Every populated dimension must
// match for the rule to fire; an empty dimension matches everything.
// The zero rule (no name) is invalid — rules are CRUD'd by name.
type Rule struct {
	// Name identifies the rule; watchers and the /rules API key on it.
	Name string
	// Prefixes constrains the event prefix under Mode; empty matches any
	// prefix.
	Prefixes []netip.Prefix
	// Mode is how Prefixes match (exact, covered, lpm).
	Mode Mode
	// Origins matches events whose inferred blackholing users include
	// any of these ASNs.
	Origins []bgp.ASN
	// Providers matches events inferring any of these providers.
	Providers []core.ProviderRef
	// Communities matches events carrying any of these communities.
	Communities []bgp.Community
	// MinDuration drops events shorter than this (evaluated at close,
	// when the duration is final).
	MinDuration time.Duration
	// Verdicts matches the event's detection-time legitimacy verdict
	// ("legitimate", "questionable", "illegitimate"). A rule with
	// verdicts needs the hub's annotator; without one it never fires.
	Verdicts []string
}

// ruleNameOK reports whether a rule name round-trips through the
// compact syntax: non-empty, no whitespace, no "=" or ",".
func ruleNameOK(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	return !strings.ContainsAny(name, " \t\n\r=,")
}

// Validate checks the rule for internal consistency.
func (r *Rule) Validate() error {
	if !ruleNameOK(r.Name) {
		return fmt.Errorf("bad rule name %q (want 1-128 chars, no spaces, '=' or ',')", r.Name)
	}
	if r.Mode != ModeExact && r.Mode != ModeCovered && r.Mode != ModeLPM {
		return fmt.Errorf("rule %s: bad mode %d", r.Name, int(r.Mode))
	}
	for _, p := range r.Prefixes {
		if !p.IsValid() {
			return fmt.Errorf("rule %s: invalid prefix", r.Name)
		}
	}
	if r.MinDuration < 0 {
		return fmt.Errorf("rule %s: negative min-duration %v", r.Name, r.MinDuration)
	}
	for _, v := range r.Verdicts {
		switch v {
		case enrich.VerdictLegitimate, enrich.VerdictQuestionable, enrich.VerdictIllegitimate:
		default:
			return fmt.Errorf("rule %s: bad verdict %q (want %s, %s or %s)", r.Name, v,
				enrich.VerdictLegitimate, enrich.VerdictQuestionable, enrich.VerdictIllegitimate)
		}
	}
	return nil
}

// normalize masks prefixes and sorts/dedupes every set dimension, so
// semantically equal rules render identically (String is canonical).
func (r *Rule) normalize() {
	for i, p := range r.Prefixes {
		r.Prefixes[i] = p.Masked()
	}
	slices.SortFunc(r.Prefixes, comparePrefix)
	r.Prefixes = slices.Compact(r.Prefixes)
	slices.Sort(r.Origins)
	r.Origins = slices.Compact(r.Origins)
	slices.SortFunc(r.Providers, compareProvider)
	r.Providers = slices.Compact(r.Providers)
	slices.Sort(r.Communities)
	r.Communities = slices.Compact(r.Communities)
	slices.Sort(r.Verdicts)
	r.Verdicts = slices.Compact(r.Verdicts)
}

func comparePrefix(a, b netip.Prefix) int {
	if c := a.Addr().Compare(b.Addr()); c != 0 {
		return c
	}
	return a.Bits() - b.Bits()
}

func compareProvider(a, b core.ProviderRef) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.ASN != b.ASN {
		if a.ASN < b.ASN {
			return -1
		}
		return 1
	}
	return a.IXPID - b.IXPID
}

// ParseRule parses the compact flag syntax: whitespace-separated
// key=value tokens, list values comma-separated.
//
//	name=dc-watch prefix=10.1.0.0/16,10.2.0.0/16 mode=covered
//	    origin=65001 provider=AS3356,ixp:4 community=3356:9999
//	    min-duration=90s verdict=illegitimate,questionable
//
// Keys: name (required), prefix, mode, origin, provider, community,
// min-duration, verdict. A bare address in prefix means its host
// prefix. The result is normalized: ParseRule(r.String()) is identity
// on the rendered form.
func ParseRule(s string) (Rule, error) {
	var r Rule
	seen := map[string]bool{}
	for _, tok := range strings.Fields(s) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok || val == "" {
			return Rule{}, fmt.Errorf("bad rule token %q (want key=value)", tok)
		}
		if seen[key] {
			return Rule{}, fmt.Errorf("duplicate rule key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "name":
			r.Name = val
		case "prefix":
			for _, f := range strings.Split(val, ",") {
				p, perr := parsePrefixOrAddr(f)
				if perr != nil {
					return Rule{}, fmt.Errorf("prefix: %v", perr)
				}
				r.Prefixes = append(r.Prefixes, p)
			}
		case "mode":
			if r.Mode, err = ParseMode(val); err != nil {
				return Rule{}, err
			}
		case "origin":
			for _, f := range strings.Split(val, ",") {
				n, perr := strconv.ParseUint(f, 10, 32)
				if perr != nil {
					return Rule{}, fmt.Errorf("origin: bad ASN %q", f)
				}
				r.Origins = append(r.Origins, bgp.ASN(n))
			}
		case "provider":
			for _, f := range strings.Split(val, ",") {
				pr, perr := core.ParseProviderRef(f)
				if perr != nil {
					return Rule{}, perr
				}
				r.Providers = append(r.Providers, pr)
			}
		case "community":
			for _, f := range strings.Split(val, ",") {
				c, perr := bgp.ParseCommunity(f)
				if perr != nil {
					return Rule{}, perr
				}
				r.Communities = append(r.Communities, c)
			}
		case "min-duration":
			if r.MinDuration, err = time.ParseDuration(val); err != nil {
				return Rule{}, fmt.Errorf("min-duration: %v", err)
			}
		case "verdict":
			r.Verdicts = append(r.Verdicts, strings.Split(val, ",")...)
		default:
			return Rule{}, fmt.Errorf("unknown rule key %q", key)
		}
	}
	r.normalize()
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// parsePrefixOrAddr accepts a prefix or a bare address (its host
// prefix).
func parsePrefixOrAddr(s string) (netip.Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		a, aerr := netip.ParseAddr(s)
		if aerr != nil {
			return netip.Prefix{}, fmt.Errorf("bad prefix %q", s)
		}
		p = netip.PrefixFrom(a, a.BitLen())
	}
	return p, nil
}

// String renders the rule in the canonical compact syntax: the exact
// form ParseRule accepts, fields in a fixed order, sets sorted. Empty
// dimensions are omitted; mode appears only alongside prefixes.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString("name=")
	b.WriteString(r.Name)
	if len(r.Prefixes) > 0 {
		b.WriteString(" prefix=")
		for i, p := range r.Prefixes {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.String())
		}
		b.WriteString(" mode=")
		b.WriteString(r.Mode.String())
	}
	if len(r.Origins) > 0 {
		b.WriteString(" origin=")
		for i, a := range r.Origins {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.String())
		}
	}
	if len(r.Providers) > 0 {
		b.WriteString(" provider=")
		for i, p := range r.Providers {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(p.String())
		}
	}
	if len(r.Communities) > 0 {
		b.WriteString(" community=")
		for i, c := range r.Communities {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.String())
		}
	}
	if r.MinDuration > 0 {
		b.WriteString(" min-duration=")
		b.WriteString(r.MinDuration.String())
	}
	if len(r.Verdicts) > 0 {
		b.WriteString(" verdict=")
		b.WriteString(strings.Join(r.Verdicts, ","))
	}
	return b.String()
}

// ruleJSON is the wire form of a Rule: every field in its canonical
// string notation, so /rules payloads and -rules-file entries read the
// way operators write queries.
type ruleJSON struct {
	Name        string   `json:"name"`
	Prefixes    []string `json:"prefixes,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	Origins     []uint32 `json:"origins,omitempty"`
	Providers   []string `json:"providers,omitempty"`
	Communities []string `json:"communities,omitempty"`
	MinDuration string   `json:"min_duration,omitempty"`
	Verdicts    []string `json:"verdicts,omitempty"`
}

// MarshalJSON renders the rule in its wire form.
func (r Rule) MarshalJSON() ([]byte, error) {
	w := ruleJSON{Name: r.Name, Verdicts: r.Verdicts}
	for _, p := range r.Prefixes {
		w.Prefixes = append(w.Prefixes, p.String())
	}
	if len(r.Prefixes) > 0 {
		w.Mode = r.Mode.String()
	}
	for _, a := range r.Origins {
		w.Origins = append(w.Origins, uint32(a))
	}
	for _, p := range r.Providers {
		w.Providers = append(w.Providers, p.String())
	}
	for _, c := range r.Communities {
		w.Communities = append(w.Communities, c.String())
	}
	if r.MinDuration > 0 {
		w.MinDuration = r.MinDuration.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the wire form, normalizes and validates.
func (r *Rule) UnmarshalJSON(data []byte) error {
	var w ruleJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Rule{Name: w.Name, Verdicts: w.Verdicts}
	var err error
	for _, s := range w.Prefixes {
		p, perr := parsePrefixOrAddr(s)
		if perr != nil {
			return perr
		}
		out.Prefixes = append(out.Prefixes, p)
	}
	if out.Mode, err = ParseMode(w.Mode); err != nil {
		return err
	}
	for _, n := range w.Origins {
		out.Origins = append(out.Origins, bgp.ASN(n))
	}
	for _, s := range w.Providers {
		pr, perr := core.ParseProviderRef(s)
		if perr != nil {
			return perr
		}
		out.Providers = append(out.Providers, pr)
	}
	for _, s := range w.Communities {
		c, perr := bgp.ParseCommunity(s)
		if perr != nil {
			return perr
		}
		out.Communities = append(out.Communities, c)
	}
	if w.MinDuration != "" {
		if out.MinDuration, err = time.ParseDuration(w.MinDuration); err != nil {
			return fmt.Errorf("min_duration: %v", err)
		}
	}
	out.normalize()
	if err := out.Validate(); err != nil {
		return err
	}
	*r = out
	return nil
}
