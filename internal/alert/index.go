package alert

import (
	"slices"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/store"
)

// Index is a compiled rule set: matching an event against N rules costs
// one or two patricia-trie walks (O(prefix-bits) plus output) and a few
// map probes, not an O(N) scan. Compile once, match from one goroutine
// at a time (the hub's publish path is sequential); Rules and the index
// structures are immutable after Compile.
type Index struct {
	rules []Rule

	// trie holds every prefix-constrained rule's prefixes; postings are
	// rule ordinals. One trie serves all three modes: Covering answers
	// exact and covered, Covered answers lpm.
	trie store.Trie
	// nExactCovered / nLPM count rules per trie lookup family, so Match
	// skips walks no rule needs.
	nExactCovered int
	nLPM          int
	// byOrigin indexes rules constrained by origin but not prefix.
	byOrigin map[bgp.ASN][]int32
	// residual lists rules with neither prefix nor origin constraint;
	// they are candidates for every event.
	residual []int32
	// needVerdict reports whether any rule filters on the legitimacy
	// verdict — the hub uses it to decide whether detection-time
	// enrichment is load-bearing.
	needVerdict bool

	// visited/epoch dedupe candidates across the posting sources without
	// allocating per event; out is the reused match-result scratch.
	visited []uint64
	epoch   uint64
	out     []int32

	// compiled per-rule lookup sets, replacing slice scans on the match
	// path.
	originSets    []map[bgp.ASN]bool
	providerSets  []map[core.ProviderRef]bool
	communitySets []map[bgp.Community]bool
	verdictSets   []map[string]bool
}

// Compile builds the index over a copy of rules. Rule names must be
// unique; every rule must validate.
func Compile(rules []Rule) (*Index, error) {
	ix := &Index{
		rules:    slices.Clone(rules),
		byOrigin: map[bgp.ASN][]int32{},
		visited:  make([]uint64, len(rules)),
	}
	names := map[string]bool{}
	for i := range ix.rules {
		r := &ix.rules[i]
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if names[r.Name] {
			return nil, &DuplicateRuleError{Name: r.Name}
		}
		names[r.Name] = true
		ord := int32(i)
		switch {
		case len(r.Prefixes) > 0:
			for _, p := range r.Prefixes {
				ix.trie.Insert(p, ord)
			}
			if r.Mode == ModeLPM {
				ix.nLPM++
			} else {
				ix.nExactCovered++
			}
		case len(r.Origins) > 0:
			for _, a := range r.Origins {
				ix.byOrigin[a] = append(ix.byOrigin[a], ord)
			}
		default:
			ix.residual = append(ix.residual, ord)
		}
		if len(r.Verdicts) > 0 {
			ix.needVerdict = true
		}
		ix.originSets = append(ix.originSets, asSet(r.Origins))
		ix.providerSets = append(ix.providerSets, asSet(r.Providers))
		ix.communitySets = append(ix.communitySets, asSet(r.Communities))
		ix.verdictSets = append(ix.verdictSets, asSet(r.Verdicts))
	}
	return ix, nil
}

// DuplicateRuleError reports a rule name collision at compile time.
type DuplicateRuleError struct{ Name string }

func (e *DuplicateRuleError) Error() string {
	return "duplicate rule name " + e.Name
}

func asSet[T comparable](xs []T) map[T]bool {
	if len(xs) == 0 {
		return nil
	}
	m := make(map[T]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

// Rules returns the compiled rules in compile order. Callers must not
// mutate the slice or its elements.
func (ix *Index) Rules() []Rule { return ix.rules }

// NeedsVerdict reports whether any compiled rule filters on the
// legitimacy verdict.
func (ix *Index) NeedsVerdict() bool { return ix.needVerdict }

// Match returns the ordinals of every rule the closed event satisfies,
// ascending (compile order). verdict supplies the event's legitimacy
// verdict lazily; it is consulted only for verdict-conditioned
// candidates and called at most once per Match. A nil verdict func
// means "no enrichment": verdict-conditioned rules never fire.
//
// Match reuses internal scratch space — including the returned slice,
// which is valid only until the next Match — and is not safe for
// concurrent use; the hub serializes it on the publish path.
func (ix *Index) Match(ev *core.Event, verdict func() string) []int32 {
	ix.epoch++
	out := ix.out[:0]
	var verdictVal string
	verdictKnown := false
	try := func(ord int32) {
		if ix.visited[ord] == ix.epoch {
			return
		}
		ix.visited[ord] = ix.epoch
		r := &ix.rules[ord]
		if r.MinDuration > 0 && ev.Duration() < r.MinDuration {
			return
		}
		if s := ix.originSets[ord]; s != nil && !anyKey(ev.Users, s) {
			return
		}
		if s := ix.providerSets[ord]; s != nil && !anyKey(ev.Providers, s) {
			return
		}
		if s := ix.communitySets[ord]; s != nil && !anyKey(ev.Communities, s) {
			return
		}
		if s := ix.verdictSets[ord]; s != nil {
			if verdict == nil {
				return
			}
			if !verdictKnown {
				verdictVal = verdict()
				verdictKnown = true
			}
			if !s[verdictVal] {
				return
			}
		}
		out = append(out, ord)
	}

	if ev.Prefix.IsValid() {
		if ix.nExactCovered > 0 {
			masked := ev.Prefix.Masked()
			for _, m := range ix.trie.Covering(ev.Prefix) {
				exact := m.Prefix == masked
				for _, ord := range m.Ords {
					r := &ix.rules[ord]
					switch r.Mode {
					case ModeCovered:
						try(ord)
					case ModeExact:
						if exact {
							try(ord)
						}
					}
				}
			}
		}
		if ix.nLPM > 0 {
			for _, m := range ix.trie.Covered(ev.Prefix) {
				for _, ord := range m.Ords {
					if ix.rules[ord].Mode == ModeLPM {
						try(ord)
					}
				}
			}
		}
	}
	for u := range ev.Users {
		for _, ord := range ix.byOrigin[u] {
			try(ord)
		}
	}
	for _, ord := range ix.residual {
		try(ord)
	}
	slices.Sort(out)
	ix.out = out
	return out
}

// anyKey reports whether any key of m is in set.
func anyKey[K comparable](m map[K]bool, set map[K]bool) bool {
	// Probe the smaller side: rules usually name a handful of values
	// while events can carry many, and vice versa.
	if len(set) <= len(m) {
		for k := range set {
			if m[k] {
				return true
			}
		}
		return false
	}
	for k := range m {
		if set[k] {
			return true
		}
	}
	return false
}
