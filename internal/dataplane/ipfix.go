package dataplane

import (
	"math"
	"math/rand"
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// TrafficPoint is one time-bucket of IXP traffic toward one blackholed
// prefix, split into dropped (redirected to the blackholing next hop)
// and forwarded (members not honouring the blackhole) bytes — the two
// stacked series of Figure 9(c).
type TrafficPoint struct {
	Time      time.Time
	Prefix    netip.Prefix
	Dropped   int64
	Forwarded int64
}

// MemberContribution summarises one member's share of the traffic that
// still reaches a blackholed prefix (§10: 80% of leaked traffic comes
// from fewer than ten members).
type MemberContribution struct {
	Member bgp.ASN
	Bytes  int64
}

// IPFIXConfig parameterises the fabric simulation.
type IPFIXConfig struct {
	// SampleRate is the flow sampling ratio (1 out of N packets; the
	// paper's traces are 1:10000).
	SampleRate int
	// BucketLen is the aggregation interval of the output series.
	BucketLen time.Duration
	// MeanMbps scales each member's mean offered traffic toward the
	// victim prefix.
	MeanMbps float64
	// Seed drives the deterministic noise.
	Seed int64
}

// DefaultIPFIXConfig matches the paper's one-week, 1:10K-sampled traces.
func DefaultIPFIXConfig() IPFIXConfig {
	return IPFIXConfig{SampleRate: 10000, BucketLen: time.Hour, MeanMbps: 40, Seed: 42}
}

// VictimSpec describes one blackholed prefix on the fabric for the
// simulation window.
type VictimSpec struct {
	Prefix netip.Prefix
	// Honoring lists members redirecting their traffic to the
	// blackholing next hop (from collector.Result.DroppingIXPMembers).
	Honoring map[bgp.ASN]bool
	// ControlPlaneOnly marks prefixes blackholed on the control plane
	// with no data-plane effect (misconfigured users, the red region of
	// Fig 9c): every member keeps forwarding.
	ControlPlaneOnly bool
}

// memberWeight gives each member a heavy-tailed share of the traffic
// toward a victim, so that a handful of members dominate (§10).
func memberWeight(member bgp.ASN, prefix netip.Prefix, seed int64) float64 {
	h := uint64(member)*0x9E3779B97F4A7C15 ^ uint64(seed)*0xBF58476D1CE4E5B9
	for _, b := range prefix.Addr().As16() {
		h = (h ^ uint64(b)) * 0x94D049BB133111EB
	}
	// Pareto-like with a bounded tail: weight = (1/u)^1.3 with u uniform
	// in [0.05, 1), so a few members dominate without any single member
	// overwhelming the aggregate.
	u := float64(h%9500+500) / 10000
	return math.Pow(1/u, 1.3)
}

// SimulateIXPTraffic produces the per-bucket dropped/forwarded series
// for each victim prefix on one IXP's fabric over [start, start+dur).
// Traffic follows a diurnal curve with deterministic noise.
func SimulateIXPTraffic(x *topology.IXP, victims []VictimSpec, start time.Time, dur time.Duration, cfg IPFIXConfig) [][]TrafficPoint {
	r := rand.New(rand.NewSource(cfg.Seed))
	nBuckets := int(dur / cfg.BucketLen)
	out := make([][]TrafficPoint, len(victims))

	for vi, v := range victims {
		series := make([]TrafficPoint, nBuckets)
		// Precompute member weights.
		weights := make([]float64, len(x.Members))
		var totalW float64
		for i, m := range x.Members {
			weights[i] = memberWeight(m, v.Prefix, cfg.Seed)
			totalW += weights[i]
		}
		for b := 0; b < nBuckets; b++ {
			t := start.Add(time.Duration(b) * cfg.BucketLen)
			// Diurnal shape: peak in the evening, trough at night.
			hour := float64(t.Hour()) + float64(t.Minute())/60
			diurnal := 0.6 + 0.4*math.Sin((hour-6)/24*2*math.Pi)
			noise := 0.85 + 0.3*r.Float64()
			bucketBytes := cfg.MeanMbps * 1e6 / 8 * cfg.BucketLen.Seconds() * diurnal * noise

			var dropped, forwarded float64
			for i, m := range x.Members {
				share := bucketBytes * weights[i] / totalW
				if !v.ControlPlaneOnly && v.Honoring[m] {
					dropped += share
				} else {
					forwarded += share
				}
			}
			series[b] = TrafficPoint{
				Time:      t,
				Prefix:    v.Prefix,
				Dropped:   int64(dropped) / int64(cfg.SampleRate) * int64(cfg.SampleRate),
				Forwarded: int64(forwarded) / int64(cfg.SampleRate) * int64(cfg.SampleRate),
			}
		}
		out[vi] = series
	}
	return out
}

// TopForwarders returns the members contributing the most forwarded
// (non-dropped) traffic toward a victim, descending.
func TopForwarders(x *topology.IXP, v VictimSpec, cfg IPFIXConfig) []MemberContribution {
	var out []MemberContribution
	for _, m := range x.Members {
		if !v.ControlPlaneOnly && v.Honoring[m] {
			continue
		}
		w := memberWeight(m, v.Prefix, cfg.Seed)
		out = append(out, MemberContribution{Member: m, Bytes: int64(w * 1e6)})
	}
	// Insertion sort by bytes descending (deterministic).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Bytes > out[j-1].Bytes; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DropFraction returns the overall fraction of bytes dropped across a
// series.
func DropFraction(series []TrafficPoint) float64 {
	var d, f int64
	for _, p := range series {
		d += p.Dropped
		f += p.Forwarded
	}
	if d+f == 0 {
		return 0
	}
	return float64(d) / float64(d+f)
}
