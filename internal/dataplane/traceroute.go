// Package dataplane simulates the data-plane measurements of §10: RIPE
// Atlas-style traceroutes toward blackholed and neighbouring hosts
// (Figure 9a/9b) and IPFIX flow sampling on an IXP switching fabric
// (Figure 9c).
//
// The simulator derives IP-level paths from the topology's valley-free
// AS paths, expanding each AS into a deterministic number of router
// hops, and truncates paths where blackholing drops traffic: at the
// ingress of an AS-level blackholing provider, or on the IXP fabric when
// the sending member honours a route-server blackhole.
package dataplane

import (
	"math/rand"
	"net/netip"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Hop is one responding interface on a traced path.
type Hop struct {
	IP  netip.Addr
	ASN bgp.ASN
}

// TraceResult is one traceroute outcome.
type TraceResult struct {
	// Hops lists the responding interfaces in order, ending with the
	// destination when reached.
	Hops []Hop
	// Reached reports whether the destination answered.
	Reached bool
	// DroppedAt names the AS (or IXP member) at which traffic died, 0
	// when the trace completed.
	DroppedAt bgp.ASN
}

// IPLength returns the IP-level path length: the number of hops to the
// last responding interface.
func (t *TraceResult) IPLength() int { return len(t.Hops) }

// ASLength returns the AS-level path length: the number of distinct
// ASes on the responding path.
func (t *TraceResult) ASLength() int {
	seen := map[bgp.ASN]bool{}
	for _, h := range t.Hops {
		if h.ASN != 0 {
			seen[h.ASN] = true
		}
	}
	return len(seen)
}

// BlackholeState captures where a blackholed prefix's traffic dies, as
// produced by the control-plane propagation (collector.Result).
type BlackholeState struct {
	// Prefix is the blackholed prefix.
	Prefix netip.Prefix
	// DroppingASes null-route at ingress.
	DroppingASes map[bgp.ASN]bool
	// DroppingIXPMembers maps IXP ID to members redirecting their
	// traffic for the prefix to the blackholing next hop.
	DroppingIXPMembers map[int]map[bgp.ASN]bool
}

// Covers reports whether the state applies to the destination address.
func (b *BlackholeState) Covers(dst netip.Addr) bool {
	return b != nil && b.Prefix.IsValid() && b.Prefix.Contains(dst)
}

// Simulator runs traceroutes over one topology.
type Simulator struct {
	Topo *topology.Topology
}

// routersPerAS returns how many router hops an AS contributes to a
// transit path (deterministic per AS, 1-4).
func routersPerAS(asn bgp.ASN) int {
	h := uint64(asn) * 0x9E3779B97F4A7C15
	return 1 + int((h>>32)%4)
}

// blocksICMP reports whether an AS filters ICMP TTL-exceeded responses
// from its routers (§10 names ICMP blocking among the traceroute
// artefacts; roughly one AS in ten here). Its routers appear as
// non-responding hops: present on the path, absent from the trace.
func blocksICMP(asn bgp.ASN) bool {
	return uint64(asn)*0xD6E8FEB86659FD93>>56%10 == 0
}

// routerIP fabricates the deterministic interface address of router i
// inside an AS (infrastructure space 21.0.0.0/8).
func routerIP(asn bgp.ASN, i int) netip.Addr {
	return netip.AddrFrom4([4]byte{21, byte(asn >> 8), byte(asn), byte(1 + i)})
}

// sharedIXP returns an IXP at which both ASes peer, or nil. The edge
// a—b is then assumed to cross that IXP's fabric.
func (s *Simulator) sharedIXP(a, b bgp.ASN) *topology.IXP {
	aa, bb := s.Topo.AS(a), s.Topo.AS(b)
	if aa == nil || bb == nil {
		return nil
	}
	member := map[int]bool{}
	for _, x := range aa.IXPs {
		member[x] = true
	}
	for _, x := range bb.IXPs {
		if member[x] {
			return s.Topo.IXPs[x]
		}
	}
	return nil
}

// Traceroute traces from a probe in srcAS toward dst, honouring the
// blackhole state (which may be nil for a clean trace).
func (s *Simulator) Traceroute(srcAS bgp.ASN, dst netip.Addr, bh *BlackholeState) TraceResult {
	dstPrefix := netip.PrefixFrom(dst, dst.BitLen())
	dstAS := s.Topo.OriginOf(dstPrefix)
	if dstAS == 0 {
		return TraceResult{}
	}
	asPath := s.Topo.PathBetween(srcAS, dstAS)
	if asPath == nil {
		return TraceResult{}
	}

	covers := bh.Covers(dst)
	var res TraceResult
	for i, asn := range asPath {
		// Ingress drop at an AS-level blackholing provider: the paper's
		// null-route at the AS ingress point (§2). The provider's
		// ingress interface still answers, then silence.
		if covers && i > 0 && bh.DroppingASes[asn] {
			if !blocksICMP(asn) {
				res.Hops = append(res.Hops, Hop{IP: routerIP(asn, 0), ASN: asn})
			}
			res.DroppedAt = asn
			return res
		}
		// IXP-fabric drop: the edge from the previous AS crossed an IXP
		// where the previous AS honours the blackhole.
		if covers && i > 0 {
			prev := asPath[i-1]
			if s.Topo.Rel(prev, asn) == topology.RelPeer {
				if x := s.sharedIXP(prev, asn); x != nil {
					if drops, ok := bh.DroppingIXPMembers[x.ID]; ok && drops[prev] {
						// Traffic was redirected to the blackholing
						// next hop and discarded on the fabric.
						res.DroppedAt = prev
						return res
					}
				}
			}
		}
		n := routersPerAS(asn)
		if i == 0 || i == len(asPath)-1 {
			n = 1 // source and destination edge contribute one hop
		}
		if blocksICMP(asn) && i != 0 {
			continue // routers stay silent; the path continues beyond them
		}
		for j := 0; j < n; j++ {
			res.Hops = append(res.Hops, Hop{IP: routerIP(asn, j), ASN: asn})
		}
	}
	// Destination host answers.
	if covers && bh.DroppingASes[dstAS] {
		// Blackholed at the destination AS itself: host unreachable.
		res.DroppedAt = dstAS
		return res
	}
	res.Hops = append(res.Hops, Hop{IP: dst, ASN: dstAS})
	res.Reached = true
	return res
}

// ProbeGroup is the RIPE Atlas probe-selection group of §10.
type ProbeGroup int

// Probe groups: downstream cone, upstream cone, peering, inside the
// blackholing user's AS.
const (
	GroupDownstream ProbeGroup = iota
	GroupUpstream
	GroupPeering
	GroupInside
)

// String names the group.
func (g ProbeGroup) String() string {
	switch g {
	case GroupDownstream:
		return "downstream"
	case GroupUpstream:
		return "upstream"
	case GroupPeering:
		return "peering"
	case GroupInside:
		return "inside"
	}
	return "unknown"
}

// Probe is one measurement vantage point.
type Probe struct {
	AS    bgp.ASN
	Group ProbeGroup
}

// SelectProbes picks perGroup probes from each of the four groups
// relative to the blackholing user, filling shortfalls from the whole
// topology at random — the paper's exact procedure (§10).
func SelectProbes(topo *topology.Topology, user bgp.ASN, r *rand.Rand, perGroup int) []Probe {
	userAS := topo.AS(user)
	if userAS == nil {
		return nil
	}
	var out []Probe

	pickFrom := func(cands []bgp.ASN, g ProbeGroup) {
		n := 0
		for _, idx := range r.Perm(len(cands)) {
			if n >= perGroup {
				return
			}
			out = append(out, Probe{AS: cands[idx], Group: g})
			n++
		}
		// Shortfall: random ASes from the topology.
		for n < perGroup && len(topo.Order) > 0 {
			out = append(out, Probe{AS: topo.Order[r.Intn(len(topo.Order))], Group: g})
			n++
		}
	}

	var down []bgp.ASN
	for a := range topo.CustomerCone(user) {
		if a != user {
			down = append(down, a)
		}
	}
	topology.SortASNs(down)
	var up []bgp.ASN
	for a := range topo.UpstreamCone(user) {
		up = append(up, a)
	}
	topology.SortASNs(up)
	peers := append([]bgp.ASN(nil), userAS.Peers...)
	topology.SortASNs(peers)

	pickFrom(down, GroupDownstream)
	pickFrom(up, GroupUpstream)
	pickFrom(peers, GroupPeering)
	// Few networks actually host Atlas probes inside the victim AS; the
	// shortfall is filled at random like the other groups (§10).
	var inside []bgp.ASN
	if uint64(user)*0x9E3779B97F4A7C15>>60%4 == 0 {
		inside = make([]bgp.ASN, perGroup)
		for i := range inside {
			inside[i] = user
		}
	}
	pickFrom(inside, GroupInside)
	return out
}

// PathMeasurement is one probe's traceroute triple for a blackholing
// event: to the blackholed host during the event, to the same host
// after withdrawal, and to a neighbouring non-blackholed host during
// the event.
type PathMeasurement struct {
	Probe    Probe
	During   TraceResult
	After    TraceResult
	Neighbor TraceResult
}

// IPDiff returns after-minus-during IP path length (positive = the
// blackholed trace terminated earlier).
func (m *PathMeasurement) IPDiff() int { return m.After.IPLength() - m.During.IPLength() }

// ASDiff returns after-minus-during AS path length.
func (m *PathMeasurement) ASDiff() int { return m.After.ASLength() - m.During.ASLength() }

// NeighborIPDiff returns neighbour-minus-blackholed IP path length
// during the event.
func (m *PathMeasurement) NeighborIPDiff() int { return m.Neighbor.IPLength() - m.During.IPLength() }

// NeighborTarget picks the non-blackholed comparison host: for a /32 the
// other host of its /31, else the first spare address of the covering
// prefix (§10, footnote 3).
func NeighborTarget(p netip.Prefix) netip.Addr {
	a := p.Addr().As4()
	if p.Bits() >= 31 {
		a[3] ^= 1
		return netip.AddrFrom4(a)
	}
	a[3] += 1
	return netip.AddrFrom4(a)
}

// MeasureEvent runs the full §10 campaign for one blackholing event.
func (s *Simulator) MeasureEvent(user bgp.ASN, prefix netip.Prefix, bh *BlackholeState, r *rand.Rand, perGroup int) []PathMeasurement {
	if !prefix.Addr().Is4() {
		return nil
	}
	probes := SelectProbes(s.Topo, user, r, perGroup)
	target := prefix.Addr()
	neighbor := NeighborTarget(prefix)
	var out []PathMeasurement
	for _, p := range probes {
		m := PathMeasurement{Probe: p}
		m.During = s.Traceroute(p.AS, target, bh)
		m.After = s.Traceroute(p.AS, target, nil)
		m.Neighbor = s.Traceroute(p.AS, neighbor, nil)
		out = append(out, m)
	}
	return out
}
