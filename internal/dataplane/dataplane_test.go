package dataplane

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// lineWorld: T1(10) ── M(20) ── U(30), vertical customer links, plus a
// peer edge M(20)──P(40) at IXP 0.
func lineWorld(t testing.TB) *topology.Topology {
	t.Helper()
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	add := func(asn bgp.ASN, octet byte) *topology.AS {
		as := &topology.AS{
			ASN: asn, DeclaredKind: topology.KindTransitAccess, CAIDAKind: topology.KindTransitAccess,
			Prefixes: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{octet, 0, 0, 0}), 16)},
		}
		topo.ASes[asn] = as
		topo.Order = append(topo.Order, asn)
		return as
	}
	t1 := add(10, 30)
	m := add(20, 31)
	u := add(30, 32)
	p := add(40, 33)
	cust := func(prov, c *topology.AS) {
		prov.Customers = append(prov.Customers, c.ASN)
		c.Providers = append(c.Providers, prov.ASN)
	}
	cust(t1, m)
	cust(m, u)
	m.Peers = append(m.Peers, 40)
	p.Peers = append(p.Peers, 20)
	x := &topology.IXP{
		ID: 0, Name: "IXP-0", RouteServerASN: 59000,
		PeeringLAN: netip.MustParsePrefix("23.0.0.0/22"),
		Members:    []bgp.ASN{20, 40},
	}
	m.IXPs = []int{0}
	p.IXPs = []int{0}
	topo.IXPs = []*topology.IXP{x}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTracerouteReachesWithoutBlackhole(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	dst := netip.MustParseAddr("32.0.0.1") // inside U(30)
	res := s.Traceroute(10, dst, nil)
	if !res.Reached {
		t.Fatalf("not reached: %+v", res)
	}
	last := res.Hops[len(res.Hops)-1]
	if last.IP != dst || last.ASN != 30 {
		t.Fatalf("last hop = %+v", last)
	}
	if res.ASLength() != 3 {
		t.Fatalf("AS length = %d, want 3", res.ASLength())
	}
}

func TestTracerouteDropsAtProviderIngress(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	dst := netip.MustParseAddr("32.0.0.1")
	bh := &BlackholeState{
		Prefix:       netip.PrefixFrom(dst, 32),
		DroppingASes: map[bgp.ASN]bool{20: true}, // M blackholes
	}
	res := s.Traceroute(10, dst, bh)
	if res.Reached {
		t.Fatal("blackholed host reached")
	}
	if res.DroppedAt != 20 {
		t.Fatalf("dropped at %v, want 20", res.DroppedAt)
	}
	clean := s.Traceroute(10, dst, nil)
	if res.IPLength() >= clean.IPLength() {
		t.Fatalf("blackholed path (%d) not shorter than clean (%d)", res.IPLength(), clean.IPLength())
	}
	if res.ASLength() >= clean.ASLength() {
		t.Fatal("AS-level path not shorter")
	}
}

func TestTracerouteBlackholeDoesNotAffectOtherHosts(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	bh := &BlackholeState{
		Prefix:       netip.MustParsePrefix("32.0.0.1/32"),
		DroppingASes: map[bgp.ASN]bool{20: true},
	}
	// The /31 neighbour is unaffected.
	res := s.Traceroute(10, netip.MustParseAddr("32.0.0.0"), bh)
	if !res.Reached {
		t.Fatal("neighbour host should be reachable")
	}
}

func TestTracerouteIXPFabricDrop(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	dst := netip.MustParseAddr("32.0.0.1") // in U, customer of M
	// P(40) reaches U via peer M across IXP 0. P honours a blackhole.
	bh := &BlackholeState{
		Prefix:             netip.PrefixFrom(dst, 32),
		DroppingIXPMembers: map[int]map[bgp.ASN]bool{0: {40: true}},
	}
	res := s.Traceroute(40, dst, bh)
	if res.Reached {
		t.Fatal("traffic crossed the fabric despite honouring member")
	}
	if res.DroppedAt != 40 {
		t.Fatalf("dropped at %v, want sending member 40", res.DroppedAt)
	}
}

func TestTracerouteDropAtDestinationAS(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	dst := netip.MustParseAddr("32.0.0.1")
	bh := &BlackholeState{
		Prefix:       netip.PrefixFrom(dst, 32),
		DroppingASes: map[bgp.ASN]bool{30: true}, // destination AS itself
	}
	res := s.Traceroute(10, dst, bh)
	if res.Reached {
		t.Fatal("host should be unreachable")
	}
	if res.DroppedAt != 30 {
		t.Fatalf("dropped at %v", res.DroppedAt)
	}
}

func TestSelectProbesGroups(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	// Find an AS with providers, customers and peers that hosts probes
	// (the deterministic one-in-four Atlas-coverage rule).
	hostsProbes := func(asn bgp.ASN) bool {
		return uint64(asn)*0x9E3779B97F4A7C15>>60%4 == 0
	}
	var user, bare bgp.ASN
	for _, asn := range topo.Order {
		as := topo.AS(asn)
		if len(as.Providers) == 0 || len(as.Customers) == 0 || len(as.Peers) == 0 {
			continue
		}
		if user == 0 && hostsProbes(asn) {
			user = asn
		}
		if bare == 0 && !hostsProbes(asn) {
			bare = asn
		}
	}
	if user == 0 {
		t.Skip("no suitable user")
	}
	r := rand.New(rand.NewSource(1))
	probes := SelectProbes(topo, user, r, 4)
	if len(probes) != 16 {
		t.Fatalf("probes = %d, want 16 (4 groups x 4)", len(probes))
	}
	counts := map[ProbeGroup]int{}
	for _, p := range probes {
		counts[p.Group]++
		if p.Group == GroupInside && p.AS != user {
			t.Fatal("inside probe outside probe-hosting user AS")
		}
	}
	for _, g := range []ProbeGroup{GroupDownstream, GroupUpstream, GroupPeering, GroupInside} {
		if counts[g] != 4 {
			t.Fatalf("group %s has %d probes", g, counts[g])
		}
	}
	// A user without Atlas coverage fills the inside group randomly.
	if bare != 0 {
		probes = SelectProbes(topo, bare, r, 4)
		n := 0
		for _, p := range probes {
			if p.Group == GroupInside {
				n++
			}
		}
		if n != 4 {
			t.Fatalf("inside group not filled for bare user: %d", n)
		}
	}
}

func TestMeasureEventDiffs(t *testing.T) {
	topo := lineWorld(t)
	s := &Simulator{Topo: topo}
	prefix := netip.MustParsePrefix("32.0.0.1/32")
	bh := &BlackholeState{
		Prefix:       prefix,
		DroppingASes: map[bgp.ASN]bool{20: true},
	}
	r := rand.New(rand.NewSource(1))
	ms := s.MeasureEvent(30, prefix, bh, r, 2)
	if len(ms) != 8 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// A Tier-1 probe (upstream group) must see a shorter path during.
	anyShorter := false
	for _, m := range ms {
		if m.IPDiff() > 0 {
			anyShorter = true
		}
	}
	if !anyShorter {
		t.Fatal("no probe saw path shortening")
	}
}

func TestNeighborTarget(t *testing.T) {
	if NeighborTarget(netip.MustParsePrefix("32.0.0.1/32")) != netip.MustParseAddr("32.0.0.0") {
		t.Fatal("/32 neighbour should flip last bit")
	}
	if NeighborTarget(netip.MustParsePrefix("32.0.0.0/32")) != netip.MustParseAddr("32.0.0.1") {
		t.Fatal("/32 neighbour should flip last bit")
	}
	if NeighborTarget(netip.MustParsePrefix("32.0.0.0/24")) != netip.MustParseAddr("32.0.0.1") {
		t.Fatal("/24 neighbour should be next host")
	}
}

func TestSimulateIXPTraffic(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	x := topo.IXPs[0]
	honoring := map[bgp.ASN]bool{}
	for i, m := range x.Members {
		if i%5 != 0 { // 80% honour
			honoring[m] = true
		}
	}
	victims := []VictimSpec{
		{Prefix: netip.MustParsePrefix("31.0.0.1/32"), Honoring: honoring},
		{Prefix: netip.MustParsePrefix("31.0.0.2/32"), ControlPlaneOnly: true},
	}
	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	series := SimulateIXPTraffic(x, victims, start, 7*24*time.Hour, DefaultIPFIXConfig())
	if len(series) != 2 {
		t.Fatal("series count")
	}
	if len(series[0]) != 7*24 {
		t.Fatalf("buckets = %d", len(series[0]))
	}
	// The honoured victim drops most traffic; the misconfigured one
	// drops none (Fig 9c red region).
	if f := DropFraction(series[0]); f < 0.5 {
		t.Fatalf("drop fraction = %.2f, want > 0.5", f)
	}
	if f := DropFraction(series[1]); f != 0 {
		t.Fatalf("control-plane-only drop fraction = %.2f, want 0", f)
	}
	// Diurnal variation: max bucket should clearly exceed min bucket.
	var minB, maxB int64 = 1 << 62, 0
	for _, p := range series[0] {
		tot := p.Dropped + p.Forwarded
		if tot < minB {
			minB = tot
		}
		if tot > maxB {
			maxB = tot
		}
	}
	if maxB < minB*2 {
		t.Fatalf("no diurnal variation: min=%d max=%d", minB, maxB)
	}
}

func TestTopForwardersSkew(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.3))
	if err != nil {
		t.Fatal(err)
	}
	// Use the big IXP (ID 0) for a realistic member count.
	x := topo.IXPs[0]
	honoring := map[bgp.ASN]bool{}
	for i, m := range x.Members {
		if i%5 != 0 {
			honoring[m] = true
		}
	}
	v := VictimSpec{Prefix: netip.MustParsePrefix("31.0.0.1/32"), Honoring: honoring}
	top := TopForwarders(x, v, DefaultIPFIXConfig())
	if len(top) < 3 {
		t.Skip("too few forwarders")
	}
	var total, top10 int64
	for i, c := range top {
		total += c.Bytes
		if i < 10 {
			top10 += c.Bytes
		}
	}
	if float64(top10)/float64(total) < 0.4 {
		t.Fatalf("top-10 share = %.2f, want heavy tail", float64(top10)/float64(total))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Bytes > top[i-1].Bytes {
			t.Fatal("not sorted descending")
		}
	}
}

func TestICMPBlockingHidesHops(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	s := &Simulator{Topo: topo}
	// Find a blocked transit AS on some working path.
	var found bool
	for _, src := range topo.Order[:40] {
		for _, dst := range topo.Order[len(topo.Order)-40:] {
			path := topo.PathBetween(src, dst)
			if len(path) < 3 {
				continue
			}
			hasBlocked := false
			for _, a := range path[1 : len(path)-1] {
				if blocksICMP(a) {
					hasBlocked = true
				}
			}
			if !hasBlocked {
				continue
			}
			target := topo.AS(dst).Prefixes[0].Addr().Next()
			res := s.Traceroute(src, target, nil)
			if !res.Reached {
				continue
			}
			// No hop may belong to an ICMP-blocking transit AS.
			for _, h := range res.Hops[:len(res.Hops)-1] {
				if h.ASN != src && blocksICMP(h.ASN) {
					t.Fatalf("hop from ICMP-blocking AS%d visible", h.ASN)
				}
			}
			// The trace still reaches the destination (silent middle).
			if res.Hops[len(res.Hops)-1].IP != target {
				t.Fatal("destination missing")
			}
			found = true
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no blocked transit AS on sampled paths")
	}
}

func TestProbeGroupString(t *testing.T) {
	if GroupDownstream.String() != "downstream" || GroupInside.String() != "inside" || ProbeGroup(9).String() != "unknown" {
		t.Fatal("probe group strings")
	}
}
