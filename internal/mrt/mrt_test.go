package mrt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"bgpblackholing/internal/bgp"
)

var t0 = time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)

func sampleUpdate(i int) *bgp.Update {
	return &bgp.Update{
		Time:        t0.Add(time.Duration(i) * time.Second),
		PeerIP:      netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i)}),
		PeerAS:      bgp.ASN(3356 + i),
		Announced:   []netip.Prefix{netip.MustParsePrefix("192.0.2.1/32")},
		Origin:      bgp.OriginIGP,
		Path:        bgp.NewPath(bgp.ASN(3356+i), 174, 65001),
		NextHop:     netip.MustParseAddr("10.0.0.254"),
		Communities: []bgp.Community{bgp.MakeCommunity(174, 666), bgp.CommunityNoExport},
	}
}

func TestBGP4MPRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	collector := netip.MustParseAddr("10.255.0.1")
	for i := 0; i < 5; i++ {
		if err := w.WriteUpdate(sampleUpdate(i), collector, 65535); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		m, ok := rec.(*BGP4MPMessage)
		if !ok {
			t.Fatalf("record %d: %T, want *BGP4MPMessage", i, rec)
		}
		want := sampleUpdate(i)
		if !m.Time.Equal(want.Time) {
			t.Errorf("record %d time = %v, want %v", i, m.Time, want.Time)
		}
		if m.PeerAS != want.PeerAS || m.PeerIP != want.PeerIP {
			t.Errorf("record %d peer = %v/%v", i, m.PeerAS, m.PeerIP)
		}
		if m.LocalAS != 65535 || m.LocalIP != collector {
			t.Errorf("record %d local = %v/%v", i, m.LocalAS, m.LocalIP)
		}
		if !reflect.DeepEqual(m.Update.Announced, want.Announced) {
			t.Errorf("record %d announced = %v", i, m.Update.Announced)
		}
		if !m.Update.Path.Equal(want.Path) {
			t.Errorf("record %d path = %v", i, m.Update.Path)
		}
		if !reflect.DeepEqual(m.Update.Communities, want.Communities) {
			t.Errorf("record %d communities = %v", i, m.Update.Communities)
		}
		// The decoder stamps the inner update with the record metadata.
		if m.Update.PeerAS != want.PeerAS || !m.Update.Time.Equal(want.Time) {
			t.Errorf("record %d inner metadata not stamped", i)
		}
	}
}

func TestBGP4MPIPv6Peer(t *testing.T) {
	u := sampleUpdate(0)
	u.PeerIP = netip.MustParseAddr("2001:db8::1")
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteUpdate(u, netip.MustParseAddr("2001:db8::ffff"), 65535); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	m := rec.(*BGP4MPMessage)
	if m.PeerIP != u.PeerIP {
		t.Fatalf("peer IP = %v", m.PeerIP)
	}
}

func TestTableDumpV2RoundTrip(t *testing.T) {
	pit := &PeerIndexTable{
		Time:        t0,
		CollectorID: netip.MustParseAddr("10.255.0.1"),
		ViewName:    "rrc00",
		Peers: []Peer{
			{BGPID: netip.MustParseAddr("10.1.0.1"), IP: netip.MustParseAddr("10.1.0.1"), AS: 3356},
			{BGPID: netip.MustParseAddr("10.2.0.1"), IP: netip.MustParseAddr("2001:db8::2"), AS: 196615},
		},
	}
	rib := &RIB{
		Time:     t0,
		Sequence: 7,
		Prefix:   netip.MustParsePrefix("192.0.2.1/32"),
		Entries: []RIBEntry{
			{
				PeerIndex:      0,
				OriginatedTime: t0.Add(-time.Hour),
				Attrs: &bgp.Update{
					Origin:      bgp.OriginIGP,
					Path:        bgp.NewPath(3356, 65001),
					NextHop:     netip.MustParseAddr("10.1.0.2"),
					Communities: []bgp.Community{bgp.MakeCommunity(3356, 9999)},
				},
			},
			{
				PeerIndex:      1,
				OriginatedTime: t0.Add(-2 * time.Hour),
				Attrs: &bgp.Update{
					Origin:  bgp.OriginIGP,
					Path:    bgp.NewPath(196615, 65001),
					NextHop: netip.MustParseAddr("10.2.0.2"),
				},
			},
		},
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(pit); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(rib); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	rec1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotPIT, ok := rec1.(*PeerIndexTable)
	if !ok {
		t.Fatalf("first record %T", rec1)
	}
	if gotPIT.ViewName != "rrc00" || len(gotPIT.Peers) != 2 {
		t.Fatalf("peer index = %+v", gotPIT)
	}
	if gotPIT.Peers[1].IP != netip.MustParseAddr("2001:db8::2") || gotPIT.Peers[1].AS != 196615 {
		t.Fatalf("peer[1] = %+v", gotPIT.Peers[1])
	}

	rec2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	gotRIB, ok := rec2.(*RIB)
	if !ok {
		t.Fatalf("second record %T", rec2)
	}
	if gotRIB.Prefix != rib.Prefix || gotRIB.Sequence != 7 || len(gotRIB.Entries) != 2 {
		t.Fatalf("rib = %+v", gotRIB)
	}
	if !gotRIB.Entries[0].Attrs.Path.Equal(rib.Entries[0].Attrs.Path) {
		t.Fatal("entry 0 path mismatch")
	}
	if !gotRIB.Entries[0].OriginatedTime.Equal(rib.Entries[0].OriginatedTime) {
		t.Fatal("entry 0 originated time mismatch")
	}

	// Resolution against the peer index.
	entries, err := r.ResolveRIB(gotRIB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("resolved %d entries", len(entries))
	}
	if entries[0].PeerAS != 3356 || entries[0].Prefix != rib.Prefix {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].PeerAS != 196615 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
}

func TestRIBIPv6(t *testing.T) {
	pit := &PeerIndexTable{
		Time:        t0,
		CollectorID: netip.MustParseAddr("10.255.0.1"),
		Peers:       []Peer{{BGPID: netip.MustParseAddr("10.1.0.1"), IP: netip.MustParseAddr("10.1.0.1"), AS: 6939}},
	}
	rib := &RIB{
		Time:   t0,
		Prefix: netip.MustParsePrefix("2001:db8::1/128"),
		Entries: []RIBEntry{{
			PeerIndex:      0,
			OriginatedTime: t0,
			Attrs: &bgp.Update{
				Origin:  bgp.OriginIGP,
				Path:    bgp.NewPath(6939, 65010),
				NextHop: netip.MustParseAddr("2001:db8:ffff::1"),
			},
		}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePeerIndexTable(pit); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(rib); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := rec.(*RIB)
	if got.Prefix != rib.Prefix {
		t.Fatalf("prefix = %v", got.Prefix)
	}
	if got.Entries[0].Attrs.NextHop != rib.Entries[0].Attrs.NextHop {
		t.Fatalf("v6 next hop = %v", got.Entries[0].Attrs.NextHop)
	}
}

func TestResolveRIBErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.ResolveRIB(&RIB{}); !errors.Is(err, ErrNoPeerIndex) {
		t.Fatalf("err = %v, want ErrNoPeerIndex", err)
	}
	r.peers = &PeerIndexTable{Peers: []Peer{{}}}
	rib := &RIB{Entries: []RIBEntry{{PeerIndex: 5, Attrs: &bgp.Update{}}}}
	if _, err := r.ResolveRIB(rib); !errors.Is(err, ErrBadPeerIndex) {
		t.Fatalf("err = %v, want ErrBadPeerIndex", err)
	}
}

func TestReaderSkipsUnknownTypes(t *testing.T) {
	var buf bytes.Buffer
	// Hand-craft an unknown record (type 99).
	hdr := appendHeader(nil, t0, 99, 1, 3)
	buf.Write(hdr)
	buf.Write([]byte{1, 2, 3})
	w := NewWriter(&buf)
	if err := w.WriteUpdate(sampleUpdate(0), netip.MustParseAddr("10.255.0.1"), 65535); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.(*BGP4MPMessage); !ok {
		t.Fatalf("got %T, want BGP4MP after skipping unknown", rec)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteUpdate(sampleUpdate(0), netip.MustParseAddr("10.255.0.1"), 65535); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 13, len(full) - 3} {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.Next(); err == nil {
			t.Errorf("cut at %d: want error", cut)
		}
	}
}

func TestReaderRejectsHugeRecord(t *testing.T) {
	hdr := appendHeader(nil, t0, TypeBGP4MP, SubtypeBGP4MPMessageAS4, maxRecordLen+1)
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.Next(); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

// Property: any sequence of valid updates survives an archive round trip.
func TestArchiveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var want []*bgp.Update
		for i := 0; i < n; i++ {
			u := &bgp.Update{
				Time:    t0.Add(time.Duration(i) * time.Minute),
				PeerIP:  netip.AddrFrom4([4]byte{10, 0, byte(r.Intn(256)), byte(1 + r.Intn(254))}),
				PeerAS:  bgp.ASN(1 + r.Intn(65000)),
				Origin:  bgp.OriginIGP,
				Path:    bgp.NewPath(bgp.ASN(1+r.Intn(65000)), bgp.ASN(1+r.Intn(65000))),
				NextHop: netip.AddrFrom4([4]byte{10, 9, 9, 9}),
			}
			bits := 8 + r.Intn(25)
			addr := netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			u.Announced = []netip.Prefix{netip.PrefixFrom(addr, bits).Masked()}
			if r.Intn(2) == 0 {
				u.Communities = []bgp.Community{bgp.Community(r.Uint32())}
			}
			if err := w.WriteUpdate(u, netip.MustParseAddr("10.255.0.1"), 65535); err != nil {
				return false
			}
			want = append(want, u)
		}
		rd := NewReader(&buf)
		recs, err := rd.ReadAll()
		if err != nil || len(recs) != n {
			return false
		}
		for i, rec := range recs {
			m := rec.(*BGP4MPMessage)
			if !reflect.DeepEqual(m.Update.Announced, want[i].Announced) {
				return false
			}
			if m.PeerAS != want[i].PeerAS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
