// Package mrt implements the Multi-Threaded Routing Toolkit (MRT) export
// format of RFC 6396, the archive format published by RIPE RIS, Route
// Views and PCH and consumed by BGPStream-style pipelines.
//
// Two record families are supported, the two that matter for BGP
// measurement studies:
//
//   - BGP4MP / BGP4MP_MESSAGE_AS4 — archived BGP UPDATE messages,
//     carrying the full RFC 4271 wire message plus peer metadata.
//   - TABLE_DUMP_V2 — periodic RIB snapshots: a PEER_INDEX_TABLE record
//     followed by RIB_IPV4_UNICAST / RIB_IPV6_UNICAST records.
//
// A Writer produces archives byte-compatible with this package's Reader,
// following RFC 6396 framing: a 12-byte common header (timestamp, type,
// subtype, length) followed by the type-specific body.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
)

// MRT record types and subtypes (RFC 6396 §4).
const (
	TypeTableDumpV2 = 13
	TypeBGP4MP      = 16

	SubtypePeerIndexTable = 1
	SubtypeRIBIPv4Unicast = 2
	SubtypeRIBIPv6Unicast = 4

	SubtypeBGP4MPMessageAS4 = 4
)

// Errors returned by the decoder.
var (
	ErrTruncated      = errors.New("mrt: truncated record")
	ErrUnknownType    = errors.New("mrt: unknown record type")
	ErrNoPeerIndex    = errors.New("mrt: RIB record before PEER_INDEX_TABLE")
	ErrBadPeerIndex   = errors.New("mrt: peer index out of range")
	ErrRecordTooLarge = errors.New("mrt: record exceeds size limit")
)

// maxRecordLen bounds a single MRT record body, protecting the reader
// against corrupt length fields.
const maxRecordLen = 16 << 20

// Record is any decoded MRT record.
type Record interface {
	// Timestamp is the MRT common-header time of the record.
	Timestamp() time.Time
}

// BGP4MPMessage is an archived BGP message exchange (subtype
// BGP4MP_MESSAGE_AS4): the raw UPDATE plus the peer that sent it.
type BGP4MPMessage struct {
	Time    time.Time
	PeerAS  bgp.ASN
	LocalAS bgp.ASN
	PeerIP  netip.Addr
	LocalIP netip.Addr
	// Update is the decoded BGP UPDATE carried by the record, stamped
	// with the record time and peer metadata.
	Update *bgp.Update
}

// Timestamp implements Record.
func (m *BGP4MPMessage) Timestamp() time.Time { return m.Time }

// Peer is one entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE.
type Peer struct {
	BGPID netip.Addr
	IP    netip.Addr
	AS    bgp.ASN
}

// PeerIndexTable is the TABLE_DUMP_V2 PEER_INDEX_TABLE record that maps
// the peer indexes used by subsequent RIB records.
type PeerIndexTable struct {
	Time        time.Time
	CollectorID netip.Addr
	ViewName    string
	Peers       []Peer
}

// Timestamp implements Record.
func (p *PeerIndexTable) Timestamp() time.Time { return p.Time }

// RIBEntry is one per-peer route of a RIB record.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime time.Time
	// Attrs holds the decoded path attributes; its prefix lists are empty.
	Attrs *bgp.Update
}

// RIB is a TABLE_DUMP_V2 RIB_IPVx_UNICAST record: one prefix with the
// routes every peer contributed for it.
type RIB struct {
	Time     time.Time
	Sequence uint32
	Prefix   netip.Prefix
	Entries  []RIBEntry
}

// Timestamp implements Record.
func (r *RIB) Timestamp() time.Time { return r.Time }

// header is the 12-byte MRT common header.
func appendHeader(dst []byte, t time.Time, typ, subtype uint16, bodyLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(t.Unix()))
	dst = binary.BigEndian.AppendUint16(dst, typ)
	dst = binary.BigEndian.AppendUint16(dst, subtype)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	return dst
}

// Writer emits MRT records to an underlying io.Writer.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer archiving to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) emit(t time.Time, typ, subtype uint16, body []byte) error {
	w.buf = w.buf[:0]
	w.buf = appendHeader(w.buf, t, typ, subtype, len(body))
	w.buf = append(w.buf, body...)
	_, err := w.w.Write(w.buf)
	return err
}

// WriteUpdate archives a BGP UPDATE as a BGP4MP_MESSAGE_AS4 record using
// the update's own timestamp and peer metadata. The local side is the
// collector; pass its address and AS.
func (w *Writer) WriteUpdate(u *bgp.Update, localIP netip.Addr, localAS bgp.ASN) error {
	msg, err := bgp.MarshalUpdate(u)
	if err != nil {
		return err
	}
	v6 := u.PeerIP.Is6()
	body := make([]byte, 0, 40+len(msg))
	body = binary.BigEndian.AppendUint32(body, uint32(u.PeerAS))
	body = binary.BigEndian.AppendUint32(body, uint32(localAS))
	body = binary.BigEndian.AppendUint16(body, 0) // interface index
	if v6 {
		body = binary.BigEndian.AppendUint16(body, 2) // AFI IPv6
		p := u.PeerIP.As16()
		body = append(body, p[:]...)
		l := addr16(localIP)
		body = append(body, l[:]...)
	} else {
		body = binary.BigEndian.AppendUint16(body, 1) // AFI IPv4
		p := u.PeerIP.As4()
		body = append(body, p[:]...)
		l := addr4(localIP)
		body = append(body, l[:]...)
	}
	body = append(body, msg...)
	return w.emit(u.Time, TypeBGP4MP, SubtypeBGP4MPMessageAS4, body)
}

// WritePeerIndexTable archives the peer index for subsequent RIB records.
func (w *Writer) WritePeerIndexTable(p *PeerIndexTable) error {
	body := make([]byte, 0, 16+32*len(p.Peers))
	id := addr4(p.CollectorID)
	body = append(body, id[:]...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(p.ViewName)))
	body = append(body, p.ViewName...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(p.Peers)))
	for _, peer := range p.Peers {
		// Peer type: bit 0 set = IPv6 address, bit 1 set = 4-byte AS.
		var pt byte = 0x02
		if peer.IP.Is6() {
			pt |= 0x01
		}
		body = append(body, pt)
		bid := addr4(peer.BGPID)
		body = append(body, bid[:]...)
		if peer.IP.Is6() {
			a := peer.IP.As16()
			body = append(body, a[:]...)
		} else {
			a := peer.IP.As4()
			body = append(body, a[:]...)
		}
		body = binary.BigEndian.AppendUint32(body, uint32(peer.AS))
	}
	return w.emit(p.Time, TypeTableDumpV2, SubtypePeerIndexTable, body)
}

// WriteRIB archives one RIB record. The subtype follows the prefix
// address family.
func (w *Writer) WriteRIB(r *RIB) error {
	subtype := uint16(SubtypeRIBIPv4Unicast)
	if r.Prefix.Addr().Is6() {
		subtype = SubtypeRIBIPv6Unicast
	}
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint32(body, r.Sequence)
	body = appendNLRIPrefix(body, r.Prefix)
	body = binary.BigEndian.AppendUint16(body, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		body = binary.BigEndian.AppendUint16(body, e.PeerIndex)
		body = binary.BigEndian.AppendUint32(body, uint32(e.OriginatedTime.Unix()))
		attrs := bgp.MarshalPathAttributes(e.Attrs)
		body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
		body = append(body, attrs...)
	}
	return w.emit(r.Time, TypeTableDumpV2, subtype, body)
}

// Reader decodes MRT records from an underlying io.Reader. RIB records
// are resolved against the most recent PEER_INDEX_TABLE, so that the
// caller receives fully populated peer metadata.
type Reader struct {
	r     io.Reader
	peers *PeerIndexTable
	hdr   [12]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next decodes and returns the next record, or io.EOF at end of archive.
// Unknown record types are skipped transparently.
func (r *Reader) Next() (Record, error) {
	for {
		if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncated
			}
			return nil, err
		}
		ts := time.Unix(int64(binary.BigEndian.Uint32(r.hdr[0:4])), 0).UTC()
		typ := binary.BigEndian.Uint16(r.hdr[4:6])
		subtype := binary.BigEndian.Uint16(r.hdr[6:8])
		blen := int(binary.BigEndian.Uint32(r.hdr[8:12]))
		if blen > maxRecordLen {
			return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, blen)
		}
		body := make([]byte, blen)
		if _, err := io.ReadFull(r.r, body); err != nil {
			return nil, ErrTruncated
		}

		switch {
		case typ == TypeBGP4MP && subtype == SubtypeBGP4MPMessageAS4:
			return parseBGP4MP(ts, body)
		case typ == TypeTableDumpV2 && subtype == SubtypePeerIndexTable:
			pit, err := parsePeerIndexTable(ts, body)
			if err != nil {
				return nil, err
			}
			r.peers = pit
			return pit, nil
		case typ == TypeTableDumpV2 && (subtype == SubtypeRIBIPv4Unicast || subtype == SubtypeRIBIPv6Unicast):
			return parseRIB(ts, subtype, body)
		default:
			// Skip unknown record types, as BGPStream does.
			continue
		}
	}
}

// ReadAll decodes every remaining record in the archive.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// PeerIndex returns the most recently decoded PEER_INDEX_TABLE, or nil.
func (r *Reader) PeerIndex() *PeerIndexTable { return r.peers }

// ResolveRIB converts a RIB record into per-peer bgp.RIBEntry values
// using the reader's current peer index table.
func (r *Reader) ResolveRIB(rib *RIB) ([]bgp.RIBEntry, error) {
	if r.peers == nil {
		return nil, ErrNoPeerIndex
	}
	out := make([]bgp.RIBEntry, 0, len(rib.Entries))
	for _, e := range rib.Entries {
		if int(e.PeerIndex) >= len(r.peers.Peers) {
			return nil, fmt.Errorf("%w: %d of %d", ErrBadPeerIndex, e.PeerIndex, len(r.peers.Peers))
		}
		p := r.peers.Peers[e.PeerIndex]
		out = append(out, bgp.RIBEntry{
			Prefix:              rib.Prefix,
			PeerIP:              p.IP,
			PeerAS:              p.AS,
			OriginatedAt:        e.OriginatedTime,
			Origin:              e.Attrs.Origin,
			Path:                e.Attrs.Path,
			NextHop:             e.Attrs.NextHop,
			Communities:         e.Attrs.Communities,
			LargeCommunities:    e.Attrs.LargeCommunities,
			ExtendedCommunities: e.Attrs.ExtendedCommunities,
		})
	}
	return out, nil
}

func parseBGP4MP(ts time.Time, body []byte) (*BGP4MPMessage, error) {
	if len(body) < 12 {
		return nil, ErrTruncated
	}
	m := &BGP4MPMessage{Time: ts}
	m.PeerAS = bgp.ASN(binary.BigEndian.Uint32(body[0:4]))
	m.LocalAS = bgp.ASN(binary.BigEndian.Uint32(body[4:8]))
	afi := binary.BigEndian.Uint16(body[10:12])
	body = body[12:]
	switch afi {
	case 1:
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		m.PeerIP = netip.AddrFrom4([4]byte(body[0:4]))
		m.LocalIP = netip.AddrFrom4([4]byte(body[4:8]))
		body = body[8:]
	case 2:
		if len(body) < 32 {
			return nil, ErrTruncated
		}
		m.PeerIP = netip.AddrFrom16([16]byte(body[0:16]))
		m.LocalIP = netip.AddrFrom16([16]byte(body[16:32]))
		body = body[32:]
	default:
		return nil, fmt.Errorf("mrt: BGP4MP AFI %d unsupported", afi)
	}
	u, err := bgp.UnmarshalUpdate(body)
	if err != nil {
		return nil, fmt.Errorf("mrt: inner BGP message: %w", err)
	}
	u.Time = ts
	u.PeerIP = m.PeerIP
	u.PeerAS = m.PeerAS
	m.Update = u
	return m, nil
}

func parsePeerIndexTable(ts time.Time, body []byte) (*PeerIndexTable, error) {
	if len(body) < 8 {
		return nil, ErrTruncated
	}
	pit := &PeerIndexTable{Time: ts, CollectorID: netip.AddrFrom4([4]byte(body[0:4]))}
	nameLen := int(binary.BigEndian.Uint16(body[4:6]))
	body = body[6:]
	if len(body) < nameLen+2 {
		return nil, ErrTruncated
	}
	pit.ViewName = string(body[:nameLen])
	body = body[nameLen:]
	n := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	pit.Peers = make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 5 {
			return nil, ErrTruncated
		}
		pt := body[0]
		var peer Peer
		peer.BGPID = netip.AddrFrom4([4]byte(body[1:5]))
		body = body[5:]
		if pt&0x01 != 0 {
			if len(body) < 16 {
				return nil, ErrTruncated
			}
			peer.IP = netip.AddrFrom16([16]byte(body[0:16]))
			body = body[16:]
		} else {
			if len(body) < 4 {
				return nil, ErrTruncated
			}
			peer.IP = netip.AddrFrom4([4]byte(body[0:4]))
			body = body[4:]
		}
		if pt&0x02 != 0 {
			if len(body) < 4 {
				return nil, ErrTruncated
			}
			peer.AS = bgp.ASN(binary.BigEndian.Uint32(body[0:4]))
			body = body[4:]
		} else {
			if len(body) < 2 {
				return nil, ErrTruncated
			}
			peer.AS = bgp.ASN(binary.BigEndian.Uint16(body[0:2]))
			body = body[2:]
		}
		pit.Peers = append(pit.Peers, peer)
	}
	return pit, nil
}

func parseRIB(ts time.Time, subtype uint16, body []byte) (*RIB, error) {
	if len(body) < 5 {
		return nil, ErrTruncated
	}
	rib := &RIB{Time: ts, Sequence: binary.BigEndian.Uint32(body[0:4])}
	body = body[4:]
	v6 := subtype == SubtypeRIBIPv6Unicast
	prefix, rest, err := parseNLRIPrefix(body, v6)
	if err != nil {
		return nil, err
	}
	rib.Prefix = prefix
	body = rest
	if len(body) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(body[0:2]))
	body = body[2:]
	rib.Entries = make([]RIBEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(body) < 8 {
			return nil, ErrTruncated
		}
		var e RIBEntry
		e.PeerIndex = binary.BigEndian.Uint16(body[0:2])
		e.OriginatedTime = time.Unix(int64(binary.BigEndian.Uint32(body[2:6])), 0).UTC()
		alen := int(binary.BigEndian.Uint16(body[6:8]))
		body = body[8:]
		if len(body) < alen {
			return nil, ErrTruncated
		}
		attrs, err := bgp.UnmarshalPathAttributes(body[:alen])
		if err != nil {
			return nil, fmt.Errorf("mrt: RIB entry attributes: %w", err)
		}
		e.Attrs = attrs
		body = body[alen:]
		rib.Entries = append(rib.Entries, e)
	}
	return rib, nil
}

func appendNLRIPrefix(dst []byte, p netip.Prefix) []byte {
	bits := p.Bits()
	dst = append(dst, byte(bits))
	nb := (bits + 7) / 8
	if p.Addr().Is4() {
		a := p.Addr().As4()
		dst = append(dst, a[:nb]...)
	} else {
		a := p.Addr().As16()
		dst = append(dst, a[:nb]...)
	}
	return dst
}

func parseNLRIPrefix(b []byte, v6 bool) (netip.Prefix, []byte, error) {
	if len(b) < 1 {
		return netip.Prefix{}, nil, ErrTruncated
	}
	bits := int(b[0])
	b = b[1:]
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return netip.Prefix{}, nil, fmt.Errorf("mrt: prefix length %d", bits)
	}
	nb := (bits + 7) / 8
	if len(b) < nb {
		return netip.Prefix{}, nil, ErrTruncated
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], b[:nb])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], b[:nb])
		addr = netip.AddrFrom4(a)
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, nil, err
	}
	return p, b[nb:], nil
}

func addr4(a netip.Addr) [4]byte {
	if a.IsValid() && a.Is4() {
		return a.As4()
	}
	return [4]byte{}
}

func addr16(a netip.Addr) [16]byte {
	if a.IsValid() && a.Is6() {
		return a.As16()
	}
	return [16]byte{}
}
