package mrt

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
)

// FuzzReader asserts the MRT decoder never panics on arbitrary input
// and always terminates (EOF or error).
func FuzzReader(f *testing.F) {
	// Seed with a real archive containing all record types.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	t0 := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	_ = w.WritePeerIndexTable(&PeerIndexTable{
		Time:        t0,
		CollectorID: netip.MustParseAddr("10.0.0.1"),
		ViewName:    "fuzz",
		Peers:       []Peer{{BGPID: netip.MustParseAddr("10.0.0.2"), IP: netip.MustParseAddr("10.0.0.2"), AS: 3356}},
	})
	_ = w.WriteRIB(&RIB{
		Time:   t0,
		Prefix: netip.MustParsePrefix("192.88.99.1/32"),
		Entries: []RIBEntry{{
			PeerIndex:      0,
			OriginatedTime: t0,
			Attrs: &bgp.Update{
				Origin: bgp.OriginIGP, Path: bgp.NewPath(3356, 65001),
				NextHop: netip.MustParseAddr("10.0.0.3"),
			},
		}},
	})
	_ = w.WriteUpdate(&bgp.Update{
		Time: t0, PeerIP: netip.MustParseAddr("10.0.0.2"), PeerAS: 3356,
		Announced: []netip.Prefix{netip.MustParsePrefix("192.88.99.1/32")},
		Origin:    bgp.OriginIGP, Path: bgp.NewPath(3356),
		NextHop: netip.MustParseAddr("10.0.0.3"),
	}, netip.MustParseAddr("10.0.0.1"), 64900)
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	mut := append([]byte(nil), full...)
	mut[7] ^= 0x55
	f.Add(mut)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ { // bounded: the reader must not loop forever
			rec, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && err == nil {
					t.Fatal("nil error with no record")
				}
				return
			}
			if rib, ok := rec.(*RIB); ok {
				_, _ = r.ResolveRIB(rib)
			}
		}
	})
}
