package analysis

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
)

// randomEvents builds a deterministic pseudo-random event population
// with overlapping entities across events, so partitions genuinely
// share providers/users/prefixes (the case per-shard counting gets
// wrong and set-merging must get right).
func randomEvents(seed int64, n int) []*core.Event {
	rng := rand.New(rand.NewSource(seed))
	platforms := collector.Platforms()
	events := make([]*core.Event, n)
	for i := range events {
		prefix := fmt.Sprintf("31.%d.%d.%d/32", rng.Intn(4), rng.Intn(8), rng.Intn(16))
		provider := asRef(bgp.ASN(100 + 50*rng.Intn(4)))
		user := bgp.ASN(1000 + rng.Intn(6))
		startMin := rng.Intn(5 * 24 * 60)
		endMin := startMin + 1 + rng.Intn(3*24*60)
		ps := platforms[:1+rng.Intn(len(platforms))]
		ev := mkEvent(prefix, provider, user, startMin, endMin, ps...)
		ev.Seq = uint64(i + 1)
		if rng.Intn(4) == 0 {
			ev.StartUnknown = true
		}
		if rng.Intn(3) == 0 {
			ev.DirectProviders[provider] = true
		}
		if rng.Intn(5) == 0 {
			ixp := ixpRef(0)
			ev.Providers[ixp] = true
			ev.ProviderUsers[ixp] = map[bgp.ASN]bool{user: true}
		}
		events[i] = ev
	}
	return events
}

// partitions returns several ways of splitting events into 3 shards:
// round-robin, by time half, and by prefix — the same shapes the
// store-level ShardPlans produce.
func partitions(events []*core.Event) map[string][][]*core.Event {
	out := map[string][][]*core.Event{}
	rr := make([][]*core.Event, 3)
	for i, ev := range events {
		rr[i%3] = append(rr[i%3], ev)
	}
	out["round-robin"] = rr
	byTime := make([][]*core.Event, 3)
	for _, ev := range events {
		d := int(ev.End.Sub(t0)/(48*time.Hour)) % 3
		if d < 0 {
			d = 0
		}
		byTime[d] = append(byTime[d], ev)
	}
	out["by-time"] = byTime
	byPrefix := make([][]*core.Event, 3)
	for _, ev := range events {
		byPrefix[len(ev.Prefix.String())%3] = append(byPrefix[len(ev.Prefix.String())%3], ev)
	}
	out["by-prefix"] = byPrefix
	return out
}

// TestFigure4PartialMerge: computing Figure 4 per shard and merging
// the partials equals the single-pass result, for every partition —
// including a JSON round trip through the wire (Sets) form, which is
// what actually crosses the shard boundary in a federated /figure4.
func TestFigure4PartialMerge(t *testing.T) {
	events := randomEvents(1, 80)
	const days = 9
	want := Figure4(events, t0, days)
	for name, shards := range partitions(events) {
		merged := NewFigure4Partial(t0, days)
		for _, shard := range shards {
			p := NewFigure4Partial(t0, days)
			for _, ev := range shard {
				p.Observe(ev)
			}
			if err := merged.Merge(p); err != nil {
				t.Fatalf("%s: merge: %v", name, err)
			}
		}
		if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: merged partials != single pass\ngot  %+v\nwant %+v", name, got, want)
		}

		wire := NewFigure4Partial(t0, days)
		for _, shard := range shards {
			p := NewFigure4Partial(t0, days)
			for _, ev := range shard {
				p.Observe(ev)
			}
			blob, err := json.Marshal(p.Sets())
			if err != nil {
				t.Fatalf("%s: marshal: %v", name, err)
			}
			var sets Figure4Sets
			if err := json.Unmarshal(blob, &sets); err != nil {
				t.Fatalf("%s: unmarshal: %v", name, err)
			}
			if err := wire.MergeSets(sets); err != nil {
				t.Fatalf("%s: merge sets: %v", name, err)
			}
		}
		if got := wire.Finalize(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wire round trip != single pass\ngot  %+v\nwant %+v", name, got, want)
		}
	}
	if err := NewFigure4Partial(t0, days).Merge(NewFigure4Partial(t0, days+1)); err == nil {
		t.Error("merging mismatched windows should fail")
	}
}

// TestFigure8PartialMerge: skeleton concatenation across shards
// finalizes to the same duration distributions as the whole set.
func TestFigure8PartialMerge(t *testing.T) {
	events := randomEvents(2, 60)
	const timeout = 5 * time.Minute
	wantU, wantG := Figure8(events, timeout)
	slices.Sort(wantU)
	slices.Sort(wantG)
	for name, shards := range partitions(events) {
		var merged Figure8Partial
		for _, shard := range shards {
			var p Figure8Partial
			for _, ev := range shard {
				p.Observe(ev)
			}
			merged.Merge(&p)
		}
		gotU, gotG := merged.Finalize(timeout)
		slices.Sort(gotU)
		slices.Sort(gotG)
		if !reflect.DeepEqual(gotU, wantU) {
			t.Errorf("%s: ungrouped durations diverge (%d vs %d samples)", name, len(gotU), len(wantU))
		}
		if !reflect.DeepEqual(gotG, wantG) {
			t.Errorf("%s: grouped durations diverge\ngot  %v\nwant %v", name, gotG, wantG)
		}
	}
}

// TestTable3PartialMerge: the uniqueness columns make Table 3 the
// interesting case — an entity unique on one shard may be shared
// globally, so only merged sets give the right answer.
func TestTable3PartialMerge(t *testing.T) {
	events := randomEvents(3, 70)
	want := Table3(events, nil)
	for name, shards := range partitions(events) {
		merged := NewTable3Partial(nil)
		for _, shard := range shards {
			p := NewTable3Partial(nil)
			for _, ev := range shard {
				p.Observe(ev)
			}
			merged.Merge(p)
		}
		if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: merged partials != single pass\ngot  %+v\nwant %+v", name, got, want)
		}
	}
}

// TestTable4PartialMerge: per-provider-kind visibility merges the
// same way.
func TestTable4PartialMerge(t *testing.T) {
	events := randomEvents(4, 70)
	topo := miniTopo()
	want := Table4(events, topo, nil)
	for name, shards := range partitions(events) {
		merged := NewTable4Partial(topo, nil)
		for _, shard := range shards {
			p := NewTable4Partial(topo, nil)
			for _, ev := range shard {
				p.Observe(ev)
			}
			merged.Merge(p)
		}
		if got := merged.Finalize(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: merged partials != single pass\ngot  %+v\nwant %+v", name, got, want)
		}
	}
}
