// Package analysis computes every table and figure of the paper's
// evaluation from inference results, topology ground truth, scan
// profiles and data-plane measurements. Each experiment has a dedicated
// function returning structured rows/series plus a formatter that prints
// the same shape the paper reports.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	xs []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return &CDF{xs: xs}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(samples []int) *CDF {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s)
	}
	return NewCDF(xs)
}

// NewCDFDurations builds a CDF over durations in seconds.
func NewCDFDurations(samples []time.Duration) *CDF {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Seconds()
	}
	return NewCDF(xs)
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.xs) }

// FractionAtOrBelow returns P(X <= x).
func (c *CDF) FractionAtOrBelow(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.xs, x)
	// Advance over equal values.
	for i < len(c.xs) && c.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	i := int(q * float64(len(c.xs)))
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range c.xs {
		s += x
	}
	return s / float64(len(c.xs))
}

// Histogram counts samples into labelled integer bins.
type Histogram struct {
	// Bins maps bin key to count.
	Bins map[int]int
}

// NewHistogram builds a histogram from integer samples.
func NewHistogram(samples []int) *Histogram {
	h := &Histogram{Bins: map[int]int{}}
	for _, s := range samples {
		h.Bins[s]++
	}
	return h
}

// Total returns the sample count.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Bins {
		n += c
	}
	return n
}

// Fraction returns the share of samples in bin k.
func (h *Histogram) Fraction(k int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Bins[k]) / float64(t)
}

// Keys returns the bin keys ascending.
func (h *Histogram) Keys() []int {
	out := make([]int, 0, len(h.Bins))
	for k := range h.Bins {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FormatTable renders rows as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
