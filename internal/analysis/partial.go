package analysis

import (
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/topology"
)

// Mergeable partial aggregates. Each paper figure/table that the
// federated query layer serves has a Partial form obeying one law:
//
//	Finalize(Observe(events)) == Finalize(Merge(Observe(shard1), …))
//
// for any partition of the events into shards — computing the figure
// per shard and merging the partials yields exactly the single-store
// result (property-tested in partial_test.go). The trick is the same
// everywhere: the figures count *distinct* providers/users/prefixes,
// so the partial keeps the underlying sets (cheap: bounded by the
// distinct-entity count, not the event count) and merging is set
// union; only Finalize collapses sets to counts.

// ---------------------------------------------------------------------
// Figure 4

// Figure4Partial is the mergeable state behind Figure 4: per-day
// distinct-provider / distinct-user / distinct-prefix sets over a fixed
// [start, start+days) window. Partials merge only over identical
// windows — the federated router computes the global window from the
// shards' aggregated time bounds first, then asks every shard for
// partials over that same window.
type Figure4Partial struct {
	Start time.Time
	Days  int

	provs    []map[string]bool
	users    []map[bgp.ASN]bool
	prefixes []map[string]bool
}

// NewFigure4Partial returns an empty partial over [start, start+days).
func NewFigure4Partial(start time.Time, days int) *Figure4Partial {
	if days < 0 {
		days = 0
	}
	p := &Figure4Partial{
		Start:    start,
		Days:     days,
		provs:    make([]map[string]bool, days),
		users:    make([]map[bgp.ASN]bool, days),
		prefixes: make([]map[string]bool, days),
	}
	for i := 0; i < days; i++ {
		p.provs[i] = map[string]bool{}
		p.users[i] = map[bgp.ASN]bool{}
		p.prefixes[i] = map[string]bool{}
	}
	return p
}

// Observe credits ev to every day its span overlaps.
func (p *Figure4Partial) Observe(ev *core.Event) {
	d0 := floorDays(ev.Start.Sub(p.Start))
	d1 := floorDays(ev.End.Sub(p.Start))
	if d0 < 0 {
		d0 = 0
	}
	if d1 >= p.Days {
		d1 = p.Days - 1
	}
	prefix := ev.Prefix.String()
	for d := d0; d <= d1; d++ {
		for pr := range ev.Providers {
			p.provs[d][pr.String()] = true
		}
		for u := range ev.Users {
			p.users[d][u] = true
		}
		p.prefixes[d][prefix] = true
	}
}

// Merge unions o into p. The windows must match exactly.
func (p *Figure4Partial) Merge(o *Figure4Partial) error {
	if !o.Start.Equal(p.Start) || o.Days != p.Days {
		return fmt.Errorf("analysis: figure4 window mismatch: %v/%dd vs %v/%dd", p.Start, p.Days, o.Start, o.Days)
	}
	for d := 0; d < p.Days; d++ {
		for k := range o.provs[d] {
			p.provs[d][k] = true
		}
		for k := range o.users[d] {
			p.users[d][k] = true
		}
		for k := range o.prefixes[d] {
			p.prefixes[d][k] = true
		}
	}
	return nil
}

// Finalize collapses the sets to the daily series.
func (p *Figure4Partial) Finalize() []DailyPoint {
	if p.Days <= 0 {
		return nil
	}
	out := make([]DailyPoint, p.Days)
	for d := 0; d < p.Days; d++ {
		out[d] = DailyPoint{
			Day:       p.Start.Add(time.Duration(d) * 24 * time.Hour),
			Providers: len(p.provs[d]),
			Users:     len(p.users[d]),
			Prefixes:  len(p.prefixes[d]),
		}
	}
	return out
}

// Figure4Sets is the wire form of a Figure4Partial: per-day sorted
// entity lists, the shape a shard's /figure4?shape=sets endpoint
// returns so the router can union shards before counting. (Counts
// alone — the []DailyPoint shape — cannot merge: the same provider
// active on two shards must not count twice.)
type Figure4Sets struct {
	Start     time.Time  `json:"start"`
	Days      int        `json:"days"`
	Providers [][]string `json:"providers"`
	Users     [][]uint32 `json:"users"`
	Prefixes  [][]string `json:"prefixes"`
}

// Sets exports the partial in wire form (sorted, deterministic).
func (p *Figure4Partial) Sets() Figure4Sets {
	s := Figure4Sets{
		Start:     p.Start,
		Days:      p.Days,
		Providers: make([][]string, p.Days),
		Users:     make([][]uint32, p.Days),
		Prefixes:  make([][]string, p.Days),
	}
	for d := 0; d < p.Days; d++ {
		s.Providers[d] = make([]string, 0, len(p.provs[d]))
		for k := range p.provs[d] {
			s.Providers[d] = append(s.Providers[d], k)
		}
		sort.Strings(s.Providers[d])
		s.Users[d] = make([]uint32, 0, len(p.users[d]))
		for u := range p.users[d] {
			s.Users[d] = append(s.Users[d], uint32(u))
		}
		slices.Sort(s.Users[d])
		s.Prefixes[d] = make([]string, 0, len(p.prefixes[d]))
		for k := range p.prefixes[d] {
			s.Prefixes[d] = append(s.Prefixes[d], k)
		}
		sort.Strings(s.Prefixes[d])
	}
	return s
}

// MergeSets unions a wire-form partial into p. The windows must match.
func (p *Figure4Partial) MergeSets(s Figure4Sets) error {
	if !s.Start.Equal(p.Start) || s.Days != p.Days {
		return fmt.Errorf("analysis: figure4 window mismatch: %v/%dd vs %v/%dd", p.Start, p.Days, s.Start, s.Days)
	}
	for d := 0; d < p.Days && d < len(s.Providers); d++ {
		for _, k := range s.Providers[d] {
			p.provs[d][k] = true
		}
	}
	for d := 0; d < p.Days && d < len(s.Users); d++ {
		for _, u := range s.Users[d] {
			p.users[d][bgp.ASN(u)] = true
		}
	}
	for d := 0; d < p.Days && d < len(s.Prefixes); d++ {
		for _, k := range s.Prefixes[d] {
			p.prefixes[d][k] = true
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Figure 8

// EventSkeleton is the minimal projection of an event that Figure 8
// (duration distributions, raw and 5-minute-grouped) depends on —
// grouping reads only the prefix and the time span. Seq carries the
// global closing order so a merged skeleton set finalizes in the same
// canonical order regardless of which shard contributed what.
type EventSkeleton struct {
	Seq          uint64       `json:"seq"`
	Prefix       netip.Prefix `json:"prefix"`
	Start        time.Time    `json:"start"`
	End          time.Time    `json:"end"`
	StartUnknown bool         `json:"start_unknown,omitempty"`
}

// Figure8Partial accumulates event skeletons; merging concatenates.
type Figure8Partial struct {
	Skeletons []EventSkeleton `json:"skeletons"`
}

// Observe records ev's skeleton.
func (p *Figure8Partial) Observe(ev *core.Event) {
	p.Skeletons = append(p.Skeletons, EventSkeleton{
		Seq:          ev.Seq,
		Prefix:       ev.Prefix,
		Start:        ev.Start,
		End:          ev.End,
		StartUnknown: ev.StartUnknown,
	})
}

// Merge appends o's skeletons.
func (p *Figure8Partial) Merge(o *Figure8Partial) {
	p.Skeletons = append(p.Skeletons, o.Skeletons...)
}

// Finalize reconstitutes synthetic events in canonical global order
// (end, seq, start, prefix — the federation merge key) and computes
// the two Figure 8 distributions.
func (p *Figure8Partial) Finalize(timeout time.Duration) (ungrouped, grouped []time.Duration) {
	sk := slices.Clone(p.Skeletons)
	sort.Slice(sk, func(i, j int) bool {
		a, b := &sk[i], &sk[j]
		if !a.End.Equal(b.End) {
			return a.End.Before(b.End)
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.Prefix.String() < b.Prefix.String()
	})
	events := make([]*core.Event, len(sk))
	for i, s := range sk {
		events[i] = &core.Event{
			Seq:          s.Seq,
			Prefix:       s.Prefix,
			Start:        s.Start,
			End:          s.End,
			StartUnknown: s.StartUnknown,
		}
	}
	return Figure8(events, timeout)
}

// ---------------------------------------------------------------------
// Tables 3 and 4

// visibilitySets is the distinct-entity state one source (platform,
// provider kind, or the ALL row) accumulates for the visibility tables.
type visibilitySets struct {
	providers map[core.ProviderRef]bool
	users     map[bgp.ASN]bool
	prefixes  map[netip.Prefix]bool
	direct    map[core.ProviderRef]bool
}

func newVisibilitySets() *visibilitySets {
	return &visibilitySets{
		providers: map[core.ProviderRef]bool{},
		users:     map[bgp.ASN]bool{},
		prefixes:  map[netip.Prefix]bool{},
		direct:    map[core.ProviderRef]bool{},
	}
}

func (s *visibilitySets) merge(o *visibilitySets) {
	for k := range o.providers {
		s.providers[k] = true
	}
	for k := range o.users {
		s.users[k] = true
	}
	for k := range o.prefixes {
		s.prefixes[k] = true
	}
	for k := range o.direct {
		s.direct[k] = true
	}
}

// Table3Partial is the mergeable state behind Table 3 (per-platform
// blackhole visibility). The uniqueness columns are computed only at
// Finalize, from the merged per-platform sets — per-shard "unique"
// counts would be wrong (an entity unique on shard A may also appear
// on shard B), which is exactly why the partial keeps sets.
type Table3Partial struct {
	deploy *collector.Deployment
	per    map[collector.Platform]*visibilitySets
	all    *visibilitySets
}

// NewTable3Partial returns an empty partial. deploy resolves the
// direct-feed column when non-nil (static deployment sessions);
// otherwise per-event DirectProviders evidence is used.
func NewTable3Partial(deploy *collector.Deployment) *Table3Partial {
	p := &Table3Partial{
		deploy: deploy,
		per:    map[collector.Platform]*visibilitySets{},
		all:    newVisibilitySets(),
	}
	for _, pl := range collector.Platforms() {
		p.per[pl] = newVisibilitySets()
	}
	return p
}

// isDirectFor resolves the direct-feed property for one provider.
func isDirectFor(deploy *collector.Deployment, p collector.Platform, pr core.ProviderRef, ev *core.Event) bool {
	if deploy == nil {
		return ev.DirectProviders[pr]
	}
	if pr.Kind == core.ProviderIXP {
		return deploy.HasRSFeed(p, pr.IXPID)
	}
	return deploy.HasDirectFeed(p, pr.ASN)
}

// Observe credits ev to the platforms that evidenced it.
func (p *Table3Partial) Observe(ev *core.Event) {
	for _, pl := range collector.Platforms() {
		if !ev.Platforms[pl] {
			continue
		}
		s := p.per[pl]
		for pr := range ev.ProvidersByPlatform[pl] {
			s.providers[pr] = true
			if isDirectFor(p.deploy, pl, pr, ev) {
				s.direct[pr] = true
			}
		}
		for u := range ev.UsersByPlatform[pl] {
			s.users[u] = true
		}
		s.prefixes[ev.Prefix] = true
	}
	for pr := range ev.Providers {
		p.all.providers[pr] = true
		if isDirectFor(p.deploy, -1, pr, ev) {
			p.all.direct[pr] = true
		}
	}
	for u := range ev.Users {
		p.all.users[u] = true
	}
	p.all.prefixes[ev.Prefix] = true
}

// Merge unions o into p.
func (p *Table3Partial) Merge(o *Table3Partial) {
	for pl, s := range o.per {
		if p.per[pl] == nil {
			p.per[pl] = newVisibilitySets()
		}
		p.per[pl].merge(s)
	}
	p.all.merge(o.all)
}

// Finalize computes the table, including the cross-platform uniqueness
// columns, from the merged sets.
func (p *Table3Partial) Finalize() []Table3Row {
	platforms := collector.Platforms()
	uniqueProviders := func(self collector.Platform) int {
		n := 0
		for k := range p.per[self].providers {
			only := true
			for _, q := range platforms {
				if q != self && p.per[q].providers[k] {
					only = false
					break
				}
			}
			if only {
				n++
			}
		}
		return n
	}
	uniqueUsers := func(self collector.Platform) int {
		n := 0
		for k := range p.per[self].users {
			only := true
			for _, q := range platforms {
				if q != self && p.per[q].users[k] {
					only = false
					break
				}
			}
			if only {
				n++
			}
		}
		return n
	}
	uniquePrefixes := func(self collector.Platform) int {
		n := 0
		for k := range p.per[self].prefixes {
			only := true
			for _, q := range platforms {
				if q != self && p.per[q].prefixes[k] {
					only = false
					break
				}
			}
			if only {
				n++
			}
		}
		return n
	}

	var out []Table3Row
	for _, pl := range platforms {
		s := p.per[pl]
		row := Table3Row{
			Source:          pl.String(),
			Providers:       len(s.providers),
			UniqueProviders: uniqueProviders(pl),
			Users:           len(s.users),
			UniqueUsers:     uniqueUsers(pl),
			Prefixes:        len(s.prefixes),
			UniquePrefixes:  uniquePrefixes(pl),
		}
		if len(s.providers) > 0 {
			row.DirectFeedFrac = float64(len(s.direct)) / float64(len(s.providers))
		}
		out = append(out, row)
	}
	allRow := Table3Row{
		Source:    "ALL",
		Providers: len(p.all.providers),
		Users:     len(p.all.users),
		Prefixes:  len(p.all.prefixes),
	}
	if len(p.all.providers) > 0 {
		allRow.DirectFeedFrac = float64(len(p.all.direct)) / float64(len(p.all.providers))
	}
	out = append(out, allRow)
	return out
}

// Table4Partial is the mergeable state behind Table 4 (visibility by
// provider network type).
type Table4Partial struct {
	topo   *topology.Topology
	deploy *collector.Deployment
	per    map[topology.Kind]*visibilitySets
}

// NewTable4Partial returns an empty partial.
func NewTable4Partial(topo *topology.Topology, deploy *collector.Deployment) *Table4Partial {
	return &Table4Partial{topo: topo, deploy: deploy, per: map[topology.Kind]*visibilitySets{}}
}

func (p *Table4Partial) get(k topology.Kind) *visibilitySets {
	if p.per[k] == nil {
		p.per[k] = newVisibilitySets()
	}
	return p.per[k]
}

// Observe credits ev's providers to their network-type rows.
func (p *Table4Partial) Observe(ev *core.Event) {
	for pr := range ev.Providers {
		k := topology.KindIXP
		if pr.Kind == core.ProviderAS {
			k = topology.KindUnknown
			if as := p.topo.AS(pr.ASN); as != nil {
				k = as.Kind()
			}
		}
		s := p.get(k)
		s.providers[pr] = true
		if isDirectFor(p.deploy, -1, pr, ev) {
			s.direct[pr] = true
		}
		// Users are credited to the provider they were inferred with,
		// not to every provider of the event.
		for u := range ev.ProviderUsers[pr] {
			s.users[u] = true
		}
		s.prefixes[ev.Prefix] = true
	}
}

// Merge unions o into p.
func (p *Table4Partial) Merge(o *Table4Partial) {
	for k, s := range o.per {
		p.get(k).merge(s)
	}
}

// Finalize computes the table from the merged sets.
func (p *Table4Partial) Finalize() []Table4Row {
	var out []Table4Row
	for _, k := range topology.Kinds() {
		s := p.per[k]
		if s == nil {
			out = append(out, Table4Row{Type: k})
			continue
		}
		row := Table4Row{
			Type:      k,
			Providers: len(s.providers),
			Users:     len(s.users),
			Prefixes:  len(s.prefixes),
		}
		if len(s.providers) > 0 {
			row.DirectFeedFrac = float64(len(s.direct)) / float64(len(s.providers))
		}
		out = append(out, row)
	}
	return out
}
