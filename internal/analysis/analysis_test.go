package analysis

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dataplane"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/topology"
)

var t0 = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)

func mkEvent(prefix string, provider core.ProviderRef, user bgp.ASN, startMin, endMin int, platforms ...collector.Platform) *core.Event {
	ev := &core.Event{
		Prefix:              netip.MustParsePrefix(prefix),
		Start:               t0.Add(time.Duration(startMin) * time.Minute),
		End:                 t0.Add(time.Duration(endMin) * time.Minute),
		Providers:           map[core.ProviderRef]bool{provider: true},
		Users:               map[bgp.ASN]bool{user: true},
		Communities:         map[bgp.Community]bool{},
		Platforms:           map[collector.Platform]bool{},
		Peers:               map[netip.Addr]bool{},
		ProviderDistances:   map[core.ProviderRef]int{},
		DirectProviders:     map[core.ProviderRef]bool{},
		ProvidersByPlatform: map[collector.Platform]map[core.ProviderRef]bool{},
		UsersByPlatform:     map[collector.Platform]map[bgp.ASN]bool{},
		ProviderUsers:       map[core.ProviderRef]map[bgp.ASN]bool{provider: {user: true}},
	}
	for _, p := range platforms {
		ev.Platforms[p] = true
		ev.ProvidersByPlatform[p] = map[core.ProviderRef]bool{provider: true}
		ev.UsersByPlatform[p] = map[bgp.ASN]bool{user: true}
	}
	return ev
}

func asRef(asn bgp.ASN) core.ProviderRef { return core.ProviderRef{Kind: core.ProviderAS, ASN: asn} }
func ixpRef(id int) core.ProviderRef     { return core.ProviderRef{Kind: core.ProviderIXP, IXPID: id} }

func miniTopo() *topology.Topology {
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	add := func(asn bgp.ASN, kind topology.Kind, country string) {
		topo.ASes[asn] = &topology.AS{ASN: asn, DeclaredKind: kind, CAIDAKind: kind, Country: country}
		topo.Order = append(topo.Order, asn)
	}
	add(100, topology.KindTransitAccess, "RU")
	add(150, topology.KindTransitAccess, "US")
	add(200, topology.KindContent, "DE")
	add(300, topology.KindEnterprise, "BR")
	topo.IXPs = []*topology.IXP{{ID: 0, Name: "IXP-0", Country: "DE",
		PeeringLAN: netip.MustParsePrefix("23.0.0.0/22")}}
	return topo
}

func TestCDF(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 2, 3, 10})
	if c.Len() != 5 {
		t.Fatal("len")
	}
	if got := c.FractionAtOrBelow(2); got != 0.6 {
		t.Fatalf("F(2) = %v", got)
	}
	if got := c.FractionAtOrBelow(0); got != 0 {
		t.Fatalf("F(0) = %v", got)
	}
	if got := c.FractionAtOrBelow(10); got != 1 {
		t.Fatalf("F(10) = %v", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Mean(); got != 3.6 {
		t.Fatalf("mean = %v", got)
	}
	var empty CDF
	if empty.FractionAtOrBelow(1) != 0 || empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{-1, -1, 0, 1, 1, 1})
	if h.Total() != 6 {
		t.Fatal("total")
	}
	if h.Fraction(1) != 0.5 {
		t.Fatalf("fraction(1) = %v", h.Fraction(1))
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != -1 || keys[2] != 1 {
		t.Fatalf("keys = %v", keys)
	}
}

func TestTable3AttributionAndUniques(t *testing.T) {
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS, collector.PlatformCDN),
		mkEvent("31.0.0.2/32", asRef(150), 300, 0, 10, collector.PlatformCDN),
		mkEvent("31.0.0.3/32", ixpRef(0), 200, 0, 10, collector.PlatformPCH),
	}
	events[0].DirectFeed = true
	events[0].DirectProviders[asRef(100)] = true
	rows := Table3(events, nil)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Source] = r
	}
	cdn := byName["CDN"]
	if cdn.Providers != 2 || cdn.Prefixes != 2 {
		t.Fatalf("CDN row = %+v", cdn)
	}
	// AS150 is CDN-only: one unique provider; user 300 CDN-only.
	if cdn.UniqueProviders != 1 || cdn.UniqueUsers != 1 || cdn.UniquePrefixes != 1 {
		t.Fatalf("CDN uniques = %+v", cdn)
	}
	pch := byName["PCH"]
	if pch.Providers != 1 || pch.UniquePrefixes != 1 {
		t.Fatalf("PCH row = %+v", pch)
	}
	all := byName["ALL"]
	if all.Providers != 3 || all.Users != 2 || all.Prefixes != 3 {
		t.Fatalf("ALL row = %+v", all)
	}
	if all.DirectFeedFrac <= 0 {
		t.Fatal("direct feed fraction missing")
	}
	if out := FormatTable3(rows); !strings.Contains(out, "ALL") {
		t.Fatal("format missing ALL row")
	}
}

func TestTable4GroupsByProviderType(t *testing.T) {
	topo := miniTopo()
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.2/32", asRef(100), 300, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.3/32", ixpRef(0), 200, 0, 10, collector.PlatformPCH),
	}
	rows := Table4(events, topo, nil)
	byKind := map[topology.Kind]Table4Row{}
	for _, r := range rows {
		byKind[r.Type] = r
	}
	ta := byKind[topology.KindTransitAccess]
	if ta.Providers != 1 || ta.Users != 2 || ta.Prefixes != 2 {
		t.Fatalf("transit row = %+v", ta)
	}
	ixp := byKind[topology.KindIXP]
	if ixp.Providers != 1 || ixp.Prefixes != 1 {
		t.Fatalf("IXP row = %+v", ixp)
	}
	if out := FormatTable4(rows); !strings.Contains(out, "IXP") {
		t.Fatal("format")
	}
}

func TestFigure4DailyCounts(t *testing.T) {
	// Event spanning days 0-2 and another on day 1 only.
	ev1 := mkEvent("31.0.0.1/32", asRef(100), 200, 0, 3*24*60-1, collector.PlatformRIS)
	ev2 := mkEvent("31.0.0.2/32", asRef(150), 300, 24*60, 24*60+30, collector.PlatformRIS)
	series := Figure4([]*core.Event{ev1, ev2}, t0, 4)
	if len(series) != 4 {
		t.Fatal("series length")
	}
	if series[0].Prefixes != 1 || series[1].Prefixes != 2 || series[2].Prefixes != 1 || series[3].Prefixes != 0 {
		t.Fatalf("prefix series = %+v", series)
	}
	if series[1].Providers != 2 || series[1].Users != 2 {
		t.Fatalf("day1 = %+v", series[1])
	}
	if out := FormatFigure4(series, 1); !strings.Contains(out, "#Prefixes") {
		t.Fatal("format")
	}
}

func TestFigure5Splits(t *testing.T) {
	topo := miniTopo()
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.2/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.3/32", ixpRef(0), 300, 0, 10, collector.PlatformPCH),
	}
	transit, ixp := Figure5a(events, topo)
	if len(transit) != 1 || transit[0] != 2 {
		t.Fatalf("transit = %v", transit)
	}
	if len(ixp) != 1 || ixp[0] != 1 {
		t.Fatalf("ixp = %v", ixp)
	}
	byKind := Figure5b(events, topo)
	if got := byKind[topology.KindContent]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("content users = %v", got)
	}
	if got := byKind[topology.KindEnterprise]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("enterprise users = %v", got)
	}
}

func TestFigure6Countries(t *testing.T) {
	topo := miniTopo()
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.2/32", ixpRef(0), 300, 0, 10, collector.PlatformPCH),
	}
	provs, users := Figure6(events, topo)
	if provs["RU"] != 1 || provs["DE"] != 1 {
		t.Fatalf("providers = %v", provs)
	}
	if users["DE"] != 1 || users["BR"] != 1 {
		t.Fatalf("users = %v", users)
	}
	top := TopCountries(provs, 1)
	if len(top) != 1 {
		t.Fatal("top countries")
	}
}

func TestFigure7bc(t *testing.T) {
	ev1 := mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS)
	ev1.Providers[asRef(150)] = true
	ev1.ProviderDistances = map[core.ProviderRef]int{asRef(100): 1, asRef(150): core.NoPath}
	ev2 := mkEvent("31.0.0.2/32", asRef(100), 200, 0, 10, collector.PlatformRIS)
	ev2.ProviderDistances = map[core.ProviderRef]int{asRef(100): core.NoPath}
	events := []*core.Event{ev1, ev2}

	h := Figure7b(events)
	if h.Bins[2] != 1 || h.Bins[1] != 1 {
		t.Fatalf("7b bins = %v", h.Bins)
	}
	hc := Figure7c(events)
	if hc.Bins[core.NoPath] != 2 || hc.Bins[1] != 1 {
		t.Fatalf("7c bins = %v", hc.Bins)
	}
}

func TestFigure7aServices(t *testing.T) {
	var events []*core.Event
	for i := 0; i < 500; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{31, byte(i >> 8), byte(i), 1}), 32)
		ev := mkEvent(p.String(), asRef(100), 200, 0, 10, collector.PlatformRIS)
		events = append(events, ev)
	}
	counts := Figure7a(events, 42)
	if counts["HTTP"] == 0 || counts["NONE"] == 0 {
		t.Fatalf("7a counts = %v", counts)
	}
	if counts["HTTP"] < counts["Telnet"] {
		t.Fatal("HTTP should dominate Telnet")
	}
}

func TestFigure8GroupingEffect(t *testing.T) {
	// Three 1-minute events 3 minutes apart: ungrouped all short,
	// grouped one long period.
	var events []*core.Event
	for i := 0; i < 3; i++ {
		events = append(events, mkEvent("31.0.0.1/32", asRef(100), 200, i*4, i*4+1, collector.PlatformRIS))
	}
	ungrouped, grouped := Figure8(events, core.DefaultGroupTimeout)
	if len(ungrouped) != 3 || len(grouped) != 1 {
		t.Fatalf("ungrouped=%d grouped=%d", len(ungrouped), len(grouped))
	}
	cdfU := NewCDFDurations(ungrouped)
	if cdfU.FractionAtOrBelow(60) != 1 {
		t.Fatal("all ungrouped should be <= 1 minute")
	}
	if grouped[0] != 9*time.Minute {
		t.Fatalf("grouped duration = %v", grouped[0])
	}
	regimes := RegimesOf(grouped)
	if regimes.Short != 1 {
		t.Fatalf("regimes = %+v", regimes)
	}
}

func TestFigure8SkipsDumpSeeded(t *testing.T) {
	ev := mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS)
	ev.StartUnknown = true
	ungrouped, _ := Figure8([]*core.Event{ev}, core.DefaultGroupTimeout)
	if len(ungrouped) != 0 {
		t.Fatal("dump-seeded event counted in duration CDF")
	}
}

func TestFigure9abFiltersUnreachableAfter(t *testing.T) {
	ms := []dataplane.PathMeasurement{
		{
			During: dataplane.TraceResult{Hops: make([]dataplane.Hop, 3)},
			After:  dataplane.TraceResult{Hops: make([]dataplane.Hop, 9), Reached: true},
		},
		{
			During: dataplane.TraceResult{Hops: make([]dataplane.Hop, 3)},
			After:  dataplane.TraceResult{Hops: make([]dataplane.Hop, 4), Reached: false},
		},
	}
	out := Figure9ab(ms)
	if len(out.IPDiffs) != 1 || out.IPDiffs[0] != 6 {
		t.Fatalf("IP diffs = %v", out.IPDiffs)
	}
}

func TestFigure2Summary(t *testing.T) {
	d := dictionary.New()
	// Register one blackhole community via a synthetic corpus-free path:
	// use the collector to observe, with a dictionary that knows 100:666.
	docs := []struct{}{}
	_ = docs
	// Build dictionary with one entry through FromCorpus-equivalent: use
	// AddPrivate (exercises the private-communication path).
	d.AddPrivate(bgp.MakeCommunity(100, 666), 100, 32)
	d.AddNonBlackhole(bgp.MakeCommunity(100, 120), 100)
	col := dictionary.NewCollector(d)
	// Blackhole community on /32s; TE community on /24s.
	for i := 0; i < 10; i++ {
		col.Observe(&bgp.Update{
			Announced:   []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
			Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
		})
		col.Observe(&bgp.Update{
			Announced:   []netip.Prefix{netip.MustParsePrefix("31.0.0.0/24")},
			Communities: []bgp.Community{bgp.MakeCommunity(100, 120)},
		})
	}
	res := col.Infer()
	points := Figure2(res.Stats, d)
	if len(points) != 2 {
		t.Fatalf("points = %+v", points)
	}
	rows := SummarizeFigure2(res.Stats, d)
	if len(rows) != 2 {
		t.Fatal("summary rows")
	}
	var bh, te Figure2SummaryRow
	for _, r := range rows {
		if r.IsBlackhole {
			bh = r
		} else {
			te = r
		}
	}
	if bh.MeanFracAt32 != 1 {
		t.Fatalf("blackhole /32 mass = %v", bh.MeanFracAt32)
	}
	if te.MeanFracAtOrPre24 != 1 {
		t.Fatalf("TE /24 mass = %v", te.MeanFracAtOrPre24)
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := FormatTable([]string{"A", "BBBB"}, [][]string{{"xx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
}
