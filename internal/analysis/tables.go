package analysis

import (
	"fmt"
	"iter"
	"slices"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/topology"
)

// Table1Row re-exports the collector visibility stats with a label.
type Table1Row struct {
	Source string
	collector.VisibilityStats
}

// Table1 labels the deployment's dataset overview (Table 1).
func Table1(d *collector.Deployment) []Table1Row {
	rows := d.Table1()
	out := make([]Table1Row, len(rows))
	for i, r := range rows {
		label := "Total"
		if r.Platform >= 0 {
			label = r.Platform.String()
		}
		out[i] = Table1Row{Source: label, VisibilityStats: r}
	}
	return out
}

// FormatTable1 renders Table 1 in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	header := []string{"Source", "#IP peers", "#AS peers", "#Unique AS peers", "#Prefixes", "#Unique prefixes"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Source,
			fmt.Sprint(r.IPPeers), fmt.Sprint(r.ASPeers), fmt.Sprint(r.UniqueASPeers),
			fmt.Sprint(r.Prefixes), fmt.Sprint(r.UniquePrefixes),
		})
	}
	return FormatTable(header, cells)
}

// Table2Row is one network-type row of the communities dictionary
// distribution (documented, with inferred-undocumented in parentheses).
type Table2Row struct {
	Type                topology.Kind
	Networks            int
	Communities         int
	InferredNetworks    int
	InferredCommunities int
}

// Table2 computes the documented blackhole communities distribution per
// network type (Table 2), plus the inferred/undocumented counts from the
// Figure 2 extension.
func Table2(dict *dictionary.Dictionary, inferred *dictionary.InferenceResult, topo *topology.Topology) []Table2Row {
	kindOf := func(asn bgp.ASN) topology.Kind {
		if as := topo.AS(asn); as != nil {
			return as.Kind()
		}
		return topology.KindUnknown
	}

	docNets := map[topology.Kind]map[bgp.ASN]bool{}
	docComms := map[topology.Kind]map[bgp.Community]bool{}
	add := func(k topology.Kind, asn bgp.ASN, c bgp.Community) {
		if docNets[k] == nil {
			docNets[k] = map[bgp.ASN]bool{}
			docComms[k] = map[bgp.Community]bool{}
		}
		if asn != 0 {
			docNets[k][asn] = true
		}
		docComms[k][c] = true
	}
	ixpNets := map[int]bool{}
	for _, e := range dict.Entries() {
		for _, p := range e.Providers {
			add(kindOf(p), p, e.Community)
		}
		for _, x := range e.IXPs {
			ixpNets[x] = true
			add(topology.KindIXP, 0, e.Community)
		}
	}
	for _, e := range dict.LargeEntries() {
		for _, p := range e.Providers {
			k := kindOf(p)
			if docNets[k] == nil {
				docNets[k] = map[bgp.ASN]bool{}
				docComms[k] = map[bgp.Community]bool{}
			}
			docNets[k][p] = true
		}
	}

	infNets := map[topology.Kind]map[bgp.ASN]bool{}
	infComms := map[topology.Kind]int{}
	if inferred != nil {
		for _, e := range inferred.Inferred {
			for _, p := range e.Providers {
				k := kindOf(p)
				if infNets[k] == nil {
					infNets[k] = map[bgp.ASN]bool{}
				}
				infNets[k][p] = true
				infComms[k]++
			}
		}
	}

	var out []Table2Row
	for _, k := range topology.Kinds() {
		row := Table2Row{Type: k}
		row.Networks = len(docNets[k])
		if k == topology.KindIXP {
			row.Networks = len(ixpNets)
		}
		row.Communities = len(docComms[k])
		row.InferredNetworks = len(infNets[k])
		row.InferredCommunities = infComms[k]
		out = append(out, row)
	}
	return out
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	header := []string{"Network Type", "#Networks", "#Blackhole communities"}
	var cells [][]string
	totN, totC, totIN, totIC := 0, 0, 0, 0
	for _, r := range rows {
		cells = append(cells, []string{
			r.Type.String(),
			fmt.Sprintf("%d (%d)", r.Networks, r.InferredNetworks),
			fmt.Sprintf("%d (%d)", r.Communities, r.InferredCommunities),
		})
		totN += r.Networks
		totC += r.Communities
		totIN += r.InferredNetworks
		totIC += r.InferredCommunities
	}
	cells = append(cells, []string{"TOTAL", fmt.Sprintf("%d (%d)", totN, totIN), fmt.Sprintf("%d (%d)", totC, totIC)})
	return FormatTable(header, cells)
}

// Table3Row is one dataset row of the blackhole visibility overview.
type Table3Row struct {
	Source          string
	Providers       int
	UniqueProviders int
	Users           int
	UniqueUsers     int
	Prefixes        int
	UniquePrefixes  int
	DirectFeedFrac  float64
}

// Table3 computes the per-source blackhole visibility overview (Table 3)
// from closed events. A platform is credited only with the providers and
// users its own observations evidenced. The direct-feed column is the
// static deployment property the paper uses — the fraction of a
// platform's visible providers that maintain a BGP session with one of
// its collectors — when deploy is non-nil; otherwise it falls back to
// the per-event DirectProviders evidence.
func Table3(events []*core.Event, deploy *collector.Deployment) []Table3Row {
	return Table3Seq(slices.Values(events), deploy)
}

// Table3Seq is Table3 over an event sequence — the store-backed
// variant: a persisted longitudinal store streams straight into it
// without materializing the event slice. It is the single-pass form
// of the mergeable Table3Partial (partial.go).
func Table3Seq(events iter.Seq[*core.Event], deploy *collector.Deployment) []Table3Row {
	p := NewTable3Partial(deploy)
	for ev := range events {
		p.Observe(ev)
	}
	return p.Finalize()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	header := []string{"Source", "#Bh providers", "#Unique", "#Bh users", "#Unique", "#Bh prefixes", "#Unique", "Direct feeds"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Source,
			fmt.Sprint(r.Providers), fmt.Sprint(r.UniqueProviders),
			fmt.Sprint(r.Users), fmt.Sprint(r.UniqueUsers),
			fmt.Sprint(r.Prefixes), fmt.Sprint(r.UniquePrefixes),
			fmt.Sprintf("%.1f%%", r.DirectFeedFrac*100),
		})
	}
	return FormatTable(header, cells)
}

// Table4Row is one provider-type row of the visibility table.
type Table4Row struct {
	Type           topology.Kind
	Providers      int
	Users          int
	Prefixes       int
	DirectFeedFrac float64
}

// Table4 groups blackhole visibility by provider network type (IXP
// providers form their own class). When deploy is non-nil the
// direct-feed column uses the static deployment sessions.
func Table4(events []*core.Event, topo *topology.Topology, deploy *collector.Deployment) []Table4Row {
	return Table4Seq(slices.Values(events), topo, deploy)
}

// Table4Seq is Table4 over an event sequence — the store-backed
// variant. It is the single-pass form of the mergeable Table4Partial
// (partial.go).
func Table4Seq(events iter.Seq[*core.Event], topo *topology.Topology, deploy *collector.Deployment) []Table4Row {
	p := NewTable4Partial(topo, deploy)
	for ev := range events {
		p.Observe(ev)
	}
	return p.Finalize()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	header := []string{"Network Type", "#Bh prov.", "#Bh users", "#Bh pref.", "Direct feed"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Type.String(),
			fmt.Sprint(r.Providers), fmt.Sprint(r.Users), fmt.Sprint(r.Prefixes),
			fmt.Sprintf("%.0f%%", r.DirectFeedFrac*100),
		})
	}
	return FormatTable(header, cells)
}
