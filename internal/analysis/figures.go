package analysis

import (
	"fmt"
	"iter"
	"net/netip"
	"slices"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dataplane"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/scans"
	"bgpblackholing/internal/topology"
)

// Figure2Point is one (community, prefix length) cell of Figure 2: the
// fraction of the community's occurrences at that prefix length.
type Figure2Point struct {
	Community   bgp.Community
	IsBlackhole bool
	PrefixLen   int
	Fraction    float64
}

// Figure2 derives the occurrence-fraction surface of Figure 2 from the
// inference collector's statistics, labelling each community blackhole
// or non-blackhole via the documented dictionary.
func Figure2(stats map[bgp.Community]*dictionary.CommunityStats, dict *dictionary.Dictionary) []Figure2Point {
	var comms []bgp.Community
	for c := range stats {
		comms = append(comms, c)
	}
	sort.Slice(comms, func(i, j int) bool { return comms[i] < comms[j] })
	var out []Figure2Point
	for _, c := range comms {
		s := stats[c]
		isBH := dict.Lookup(c) != nil
		// Figure 2 compares the two *documented* dictionaries: blackhole
		// communities and the second dictionary of non-blackhole
		// (relationship/TE) communities. Undocumented values are not
		// plotted.
		if !isBH && !dict.IsNonBlackhole(c) {
			continue
		}
		for _, l := range sortedLenKeys(s.LenCounts) {
			out = append(out, Figure2Point{
				Community:   c,
				IsBlackhole: isBH,
				PrefixLen:   l,
				Fraction:    s.FractionAtLen(l),
			})
		}
	}
	return out
}

func sortedLenKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Figure2Summary condenses the surface into the paper's headline: the
// mass blackhole communities place on /32s vs the mass non-blackhole
// communities place on /24-or-shorter prefixes.
type Figure2SummaryRow struct {
	IsBlackhole        bool
	Communities        int
	MeanFracAt32       float64
	MeanFracAtOrPre24  float64
	MeanFracMoreSpec24 float64
}

// SummarizeFigure2 aggregates Figure 2 per community class.
func SummarizeFigure2(stats map[bgp.Community]*dictionary.CommunityStats, dict *dictionary.Dictionary) []Figure2SummaryRow {
	var rows [2]Figure2SummaryRow
	rows[0].IsBlackhole = false
	rows[1].IsBlackhole = true
	var n [2]int
	for c, s := range stats {
		idx := 0
		if dict.Lookup(c) != nil {
			idx = 1
		} else if !dict.IsNonBlackhole(c) {
			continue // undocumented: in neither dictionary
		}
		if s.Total == 0 {
			continue
		}
		n[idx]++
		rows[idx].MeanFracAt32 += s.FractionAtLen(32)
		rows[idx].MeanFracMoreSpec24 += s.FractionMoreSpecificThan24()
		rows[idx].MeanFracAtOrPre24 += 1 - s.FractionMoreSpecificThan24()
	}
	for i := range rows {
		rows[i].Communities = n[i]
		if n[i] > 0 {
			rows[i].MeanFracAt32 /= float64(n[i])
			rows[i].MeanFracAtOrPre24 /= float64(n[i])
			rows[i].MeanFracMoreSpec24 /= float64(n[i])
		}
	}
	return rows[:]
}

// DailyPoint is one day of the Figure 4 longitudinal series.
type DailyPoint struct {
	Day       time.Time
	Providers int
	Users     int
	Prefixes  int
}

// Figure4 computes the daily active providers, users and blackholed
// prefixes over the timeline: an event contributes to every day its
// span overlaps.
func Figure4(events []*core.Event, start time.Time, days int) []DailyPoint {
	return Figure4Seq(slices.Values(events), start, days)
}

// Figure4Seq is Figure4 over an event sequence — the store-backed
// variant: it runs in one pass without materializing the event slice,
// so a persisted longitudinal store can stream straight into it. It is
// the single-pass form of the mergeable Figure4Partial (partial.go),
// which the federated query layer uses to combine shards.
func Figure4Seq(events iter.Seq[*core.Event], start time.Time, days int) []DailyPoint {
	if days <= 0 {
		return nil
	}
	p := NewFigure4Partial(start, days)
	for ev := range events {
		p.Observe(ev)
	}
	return p.Finalize()
}

// floorDays is the number of whole 24-hour days in d, rounding toward
// negative infinity: an event ending before the window start lands on a
// negative day index (and contributes nothing), instead of being
// truncated toward day zero. With a UTC-midnight-aligned start this
// makes day bucketing exactly calendar-day overlap, which is what lets
// a store's materialized per-day view answer Figure 4 without a scan.
func floorDays(d time.Duration) int {
	const day = 24 * time.Hour
	q := d / day
	if d%day < 0 {
		q--
	}
	return int(q)
}

// Figure5a returns the per-provider blackholed prefix counts split into
// transit/access providers and IXPs (the two CDFs of Figure 5a).
func Figure5a(events []*core.Event, topo *topology.Topology) (transit, ixp []int) {
	perProvider := map[core.ProviderRef]map[netip.Prefix]bool{}
	for _, ev := range events {
		for pr := range ev.Providers {
			if perProvider[pr] == nil {
				perProvider[pr] = map[netip.Prefix]bool{}
			}
			perProvider[pr][ev.Prefix] = true
		}
	}
	var refs []core.ProviderRef
	for pr := range perProvider {
		refs = append(refs, pr)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].String() < refs[j].String() })
	for _, pr := range refs {
		n := len(perProvider[pr])
		if pr.Kind == core.ProviderIXP {
			ixp = append(ixp, n)
			continue
		}
		if as := topo.AS(pr.ASN); as != nil && as.Kind() == topology.KindTransitAccess {
			transit = append(transit, n)
		}
	}
	return transit, ixp
}

// Figure5b returns per-user blackholed prefix counts grouped by the
// user's network type (Figure 5b).
func Figure5b(events []*core.Event, topo *topology.Topology) map[topology.Kind][]int {
	perUser := map[bgp.ASN]map[netip.Prefix]bool{}
	for _, ev := range events {
		for u := range ev.Users {
			if perUser[u] == nil {
				perUser[u] = map[netip.Prefix]bool{}
			}
			perUser[u][ev.Prefix] = true
		}
	}
	var usersSorted []bgp.ASN
	for u := range perUser {
		usersSorted = append(usersSorted, u)
	}
	topology.SortASNs(usersSorted)
	out := map[topology.Kind][]int{}
	for _, u := range usersSorted {
		k := topology.KindUnknown
		if as := topo.AS(u); as != nil {
			k = as.Kind()
		}
		out[k] = append(out[k], len(perUser[u]))
	}
	return out
}

// Figure6 counts blackholing provider and user ASes per country.
func Figure6(events []*core.Event, topo *topology.Topology) (providers, users map[string]int) {
	provSet := map[bgp.ASN]bool{}
	userSet := map[bgp.ASN]bool{}
	ixpSet := map[int]bool{}
	for _, ev := range events {
		for pr := range ev.Providers {
			if pr.Kind == core.ProviderAS {
				provSet[pr.ASN] = true
			} else {
				ixpSet[pr.IXPID] = true
			}
		}
		for u := range ev.Users {
			userSet[u] = true
		}
	}
	providers = map[string]int{}
	users = map[string]int{}
	for asn := range provSet {
		if as := topo.AS(asn); as != nil {
			providers[as.Country]++
		}
	}
	for x := range ixpSet {
		if x >= 0 && x < len(topo.IXPs) {
			providers[topo.IXPs[x].Country]++
		}
	}
	for asn := range userSet {
		if as := topo.AS(asn); as != nil {
			users[as.Country]++
		}
	}
	return providers, users
}

// Figure7a profiles the services offered on blackholed prefixes: the
// count of prefixes per service plus the NONE bucket.
func Figure7a(events []*core.Event, seed int64) map[scans.Service]int {
	seen := map[netip.Prefix]bool{}
	out := map[scans.Service]int{}
	for _, ev := range events {
		if seen[ev.Prefix] || !ev.Prefix.Addr().Is4() {
			continue
		}
		seen[ev.Prefix] = true
		p := scans.Profile(ev.Prefix.Addr(), seed)
		if !p.HasAnyService() {
			out["NONE"]++
			continue
		}
		for svc := range p.Open {
			out[svc]++
		}
	}
	return out
}

// Figure7b histograms the number of blackholing providers per event.
func Figure7b(events []*core.Event) *Histogram {
	var samples []int
	for _, ev := range events {
		samples = append(samples, len(ev.Providers))
	}
	return NewHistogram(samples)
}

// Figure7c histograms the AS distance between collector and provider,
// one sample per (event, provider) using the best vantage point that
// observed the provider; key core.NoPath (-1) is the no-path (bundling)
// bucket, where the provider never appeared on any observed path.
func Figure7c(events []*core.Event) *Histogram {
	var samples []int
	for _, ev := range events {
		for _, d := range ev.ProviderDistances {
			samples = append(samples, d)
		}
	}
	return NewHistogram(samples)
}

// Figure8Seq is Figure8 over an event sequence — the store-backed
// variant. Grouping inherently needs the full event set, so the
// sequence is collected once internally.
func Figure8Seq(events iter.Seq[*core.Event], timeout time.Duration) (ungrouped, grouped []time.Duration) {
	return Figure8(slices.Collect(events), timeout)
}

// Figure8 computes the two duration distributions of Figure 8a: raw
// (ungrouped) events and 5-minute-grouped periods.
func Figure8(events []*core.Event, timeout time.Duration) (ungrouped, grouped []time.Duration) {
	for _, ev := range events {
		if ev.StartUnknown {
			continue // dump-seeded events have no true start
		}
		ungrouped = append(ungrouped, ev.Duration())
	}
	for _, p := range core.Group(events, timeout) {
		grouped = append(grouped, p.Duration())
	}
	return ungrouped, grouped
}

// DurationRegimes buckets event durations into the paper's three
// regimes: short-lived (< 1 hour), long-lived (1 hour – 30 days) and
// very long-lived (> 30 days), Fig 8b.
type DurationRegimes struct {
	Short    int
	Long     int
	VeryLong int
}

// RegimesOf buckets durations.
func RegimesOf(durations []time.Duration) DurationRegimes {
	var out DurationRegimes
	for _, d := range durations {
		switch {
		case d < time.Hour:
			out.Short++
		case d < 30*24*time.Hour:
			out.Long++
		default:
			out.VeryLong++
		}
	}
	return out
}

// Figure9Sample is the diff summary for Figure 9(a,b).
type Figure9Sample struct {
	IPDiffs       []int // after-minus-during IP path lengths
	ASDiffs       []int // after-minus-during AS path lengths
	NeighborDiffs []int // neighbour-minus-blackholed IP lengths during
}

// Figure9ab aggregates path measurements into the diff distributions.
func Figure9ab(ms []dataplane.PathMeasurement) Figure9Sample {
	var out Figure9Sample
	for i := range ms {
		m := &ms[i]
		// Only events where the destination was reachable after the
		// blackholing count (§10 eliminates artefacts).
		if !m.After.Reached {
			continue
		}
		out.IPDiffs = append(out.IPDiffs, m.IPDiff())
		out.ASDiffs = append(out.ASDiffs, m.ASDiff())
		out.NeighborDiffs = append(out.NeighborDiffs, m.NeighborIPDiff())
	}
	return out
}

// FormatFigure4 renders a sampled view of the longitudinal series.
func FormatFigure4(series []DailyPoint, every int) string {
	header := []string{"Day", "#Providers", "#Users", "#Prefixes"}
	var cells [][]string
	for i := 0; i < len(series); i += every {
		p := series[i]
		cells = append(cells, []string{
			p.Day.Format("2006-01-02"),
			fmt.Sprint(p.Providers), fmt.Sprint(p.Users), fmt.Sprint(p.Prefixes),
		})
	}
	return FormatTable(header, cells)
}

// TopCountries returns the n largest entries of a country count map.
func TopCountries(counts map[string]int, n int) []struct {
	Country string
	Count   int
} {
	type kv struct {
		Country string
		Count   int
	}
	var all []kv
	for c, k := range counts {
		all = append(all, kv{c, k})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Country < all[j].Country
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Country string
		Count   int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Country string
			Count   int
		}{all[i].Country, all[i].Count}
	}
	return out
}
