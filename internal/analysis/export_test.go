package analysis

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
)

func TestWriteFigure4CSV(t *testing.T) {
	series := []DailyPoint{
		{Day: t0, Providers: 3, Users: 5, Prefixes: 7},
		{Day: t0.AddDate(0, 0, 1), Providers: 4, Users: 6, Prefixes: 9},
	}
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "day" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][3] != "9" {
		t.Fatalf("prefixes cell = %q", rows[2][3])
	}
}

func TestWriteCDFAndHistogramCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCDFCSV(&buf, "prefixes", NewCDFInts([]int{1, 2, 3, 10})); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("cdf rows = %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last[1] != "1.000000" {
		t.Fatalf("final CDF fraction = %q", last[1])
	}

	buf.Reset()
	if err := WriteHistogramCSV(&buf, "distance", NewHistogram([]int{-1, -1, 0, 1})); err != nil {
		t.Fatal(err)
	}
	rows, err = csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[1][0] != "-1" || rows[1][1] != "2" {
		t.Fatalf("histogram rows = %v", rows)
	}
}

func TestWriteDurationsCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteDurationsCSV(&buf,
		[]time.Duration{time.Minute, time.Second},
		[]time.Duration{time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ungrouped,1\n") || !strings.Contains(out, "grouped,3600\n") {
		t.Fatalf("csv:\n%s", out)
	}
	// Sorted ascending within each kind.
	if strings.Index(out, "ungrouped,1\n") > strings.Index(out, "ungrouped,60\n") {
		t.Fatal("durations not sorted")
	}
}

func TestWriteEventsCSV(t *testing.T) {
	ev := mkEvent("31.0.0.1/32", asRef(100), 200, 0, 90, collector.PlatformRIS)
	ev.Detections = 4
	var buf bytes.Buffer
	if err := WriteEventsCSV(&buf, []*core.Event{ev}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("rows")
	}
	r := rows[1]
	if r[0] != "31.0.0.1/32" || r[3] != "5400" || r[4] != "1" || r[6] != "4" || r[7] != "false" {
		t.Fatalf("row = %v", r)
	}
}

func TestCoveredAddresses(t *testing.T) {
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.1/32", asRef(100), 200, 20, 30, collector.PlatformRIS), // duplicate prefix
		mkEvent("31.0.1.0/24", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.1.7/32", asRef(100), 200, 0, 10, collector.PlatformRIS), // inside the /24
	}
	got := CoveredAddresses(events)
	if got != 1+256 {
		t.Fatalf("covered = %d, want 257", got)
	}
	if CoveredAddresses(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}
