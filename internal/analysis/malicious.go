package analysis

import (
	"net/netip"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/scans"
)

// CoveredAddresses counts the unique IPv4 addresses covered by the
// distinct blackholed prefixes of the events (§8: 20,948 March-2017
// prefixes covered 5.2M addresses — mostly /32s, with a tail of /24s
// and shorter doing the volume). Overlapping prefixes are de-duplicated
// by keeping the least-specific covering prefix.
func CoveredAddresses(events []*core.Event) uint64 {
	// Collect distinct IPv4 prefixes.
	seen := map[netip.Prefix]bool{}
	var prefixes []netip.Prefix
	for _, ev := range events {
		if !ev.Prefix.Addr().Is4() || seen[ev.Prefix] {
			continue
		}
		seen[ev.Prefix] = true
		prefixes = append(prefixes, ev.Prefix)
	}
	// Drop prefixes covered by a less-specific one also present.
	var total uint64
	for _, p := range prefixes {
		covered := false
		for _, q := range prefixes {
			if q != p && q.Bits() < p.Bits() && q.Contains(p.Addr()) {
				covered = true
				break
			}
		}
		if !covered {
			total += uint64(1) << (32 - p.Bits())
		}
	}
	return total
}

// MaliciousDay summarises one day of reputation matches across a
// blackholed-prefix population (§8 "Malicious Activity of Blackholed
// IPs": 400-900 daily prober/scanner matches, >90% probers, ~2% both,
// 500-800 daily login-attempt sources, union ≈ 2% of prefixes).
type MaliciousDay struct {
	Day int
	// Probers, Scanners and Both count prefixes matching each class.
	Probers  int
	Scanners int
	Both     int
	// LoginAttempts counts prefixes with repeated login attempts.
	LoginAttempts int
	// AnySuspicious counts prefixes in the union.
	AnySuspicious int
	// Total is the evaluated prefix population.
	Total int
}

// MaliciousActivity evaluates the reputation feeds against the distinct
// IPv4 blackholed prefixes of the events, one row per day in [fromDay,
// toDay).
func MaliciousActivity(events []*core.Event, fromDay, toDay int, seed int64) []MaliciousDay {
	seen := map[netip.Prefix]bool{}
	var addrs []netip.Addr
	for _, ev := range events {
		if seen[ev.Prefix] || !ev.Prefix.Addr().Is4() {
			continue
		}
		seen[ev.Prefix] = true
		addrs = append(addrs, ev.Prefix.Addr())
	}
	var out []MaliciousDay
	for day := fromDay; day < toDay; day++ {
		row := MaliciousDay{Day: day, Total: len(addrs)}
		for _, a := range addrs {
			act := scans.ActivityFor(a, day, seed)
			switch {
			case act.Prober && act.Scanner:
				row.Both++
			case act.Prober:
				row.Probers++
			case act.Scanner:
				row.Scanners++
			}
			if act.LoginAttempts {
				row.LoginAttempts++
			}
			if act.Suspicious() {
				row.AnySuspicious++
			}
		}
		out = append(out, row)
	}
	return out
}
