package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"bgpblackholing/internal/core"
)

// The CSV exporters write the figure series in plottable form, so the
// reproduced evaluation can be graphed next to the paper's figures with
// any plotting tool.

// WriteFigure4CSV exports the daily longitudinal series.
func WriteFigure4CSV(w io.Writer, series []DailyPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "providers", "users", "prefixes"}); err != nil {
		return err
	}
	for _, p := range series {
		if err := cw.Write([]string{
			p.Day.Format("2006-01-02"),
			strconv.Itoa(p.Providers), strconv.Itoa(p.Users), strconv.Itoa(p.Prefixes),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV exports an empirical CDF as (value, fraction) pairs.
func WriteCDFCSV(w io.Writer, label string, c *CDF) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{label, "cdf"}); err != nil {
		return err
	}
	n := c.Len()
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		if err := cw.Write([]string{
			fmt.Sprintf("%g", c.Quantile(float64(i)/float64(n))),
			fmt.Sprintf("%.6f", q),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteHistogramCSV exports a histogram as (bin, count, fraction) rows.
func WriteHistogramCSV(w io.Writer, label string, h *Histogram) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{label, "count", "fraction"}); err != nil {
		return err
	}
	for _, k := range h.Keys() {
		if err := cw.Write([]string{
			strconv.Itoa(k), strconv.Itoa(h.Bins[k]),
			fmt.Sprintf("%.6f", h.Fraction(k)),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDurationsCSV exports both Figure 8 duration distributions.
func WriteDurationsCSV(w io.Writer, ungrouped, grouped []time.Duration) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "seconds"}); err != nil {
		return err
	}
	write := func(kind string, ds []time.Duration) error {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, d := range sorted {
			if err := cw.Write([]string{kind, fmt.Sprintf("%.0f", d.Seconds())}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("ungrouped", ungrouped); err != nil {
		return err
	}
	if err := write("grouped", grouped); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventsCSV exports closed events in the bhdetect CSV schema, so
// library users get the same artefact as the tool.
func WriteEventsCSV(w io.Writer, events []*core.Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"prefix", "start", "end", "duration_sec", "n_providers", "n_users", "detections", "start_unknown"}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := cw.Write([]string{
			ev.Prefix.String(),
			ev.Start.UTC().Format(time.RFC3339),
			ev.End.UTC().Format(time.RFC3339),
			fmt.Sprintf("%.0f", ev.Duration().Seconds()),
			strconv.Itoa(len(ev.Providers)),
			strconv.Itoa(len(ev.Users)),
			strconv.Itoa(ev.Detections),
			strconv.FormatBool(ev.StartUnknown),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
