package analysis

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/workload"
)

func TestValidateRecall(t *testing.T) {
	events := []*core.Event{
		mkEvent("31.0.0.1/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
		mkEvent("31.0.0.2/32", ixpRef(0), 200, 0, 10, collector.PlatformPCH),
	}
	intents := []workload.Intent{
		{Prefix: netip.MustParsePrefix("31.0.0.1/32"), Providers: []bgp.ASN{100}},
		{Prefix: netip.MustParsePrefix("31.0.0.2/32"), IXPs: []int{0}},
		{Prefix: netip.MustParsePrefix("31.0.0.3/32"), Providers: []bgp.ASN{100}}, // missed
		{Prefix: netip.MustParsePrefix("31.0.0.4/32"), Misconfigured: true},       // excluded
	}
	v := Validate(events, intents)
	if v.Intents != 3 {
		t.Fatalf("intents = %d", v.Intents)
	}
	if v.DetectedPrefixOnsets != 2 {
		t.Fatalf("detected = %d", v.DetectedPrefixOnsets)
	}
	if v.IXPIntents != 1 || v.DetectedIXPIntents != 1 {
		t.Fatalf("IXP recall inputs = %d/%d", v.DetectedIXPIntents, v.IXPIntents)
	}
	if v.FalsePrefixes != 0 {
		t.Fatalf("false prefixes = %d", v.FalsePrefixes)
	}
	if r := v.Recall(); r < 0.66 || r > 0.67 {
		t.Fatalf("recall = %v", r)
	}
	if v.IXPRecall() != 1 {
		t.Fatalf("IXP recall = %v", v.IXPRecall())
	}
}

func TestValidateFlagsUnknownPrefixes(t *testing.T) {
	events := []*core.Event{
		mkEvent("31.9.9.9/32", asRef(100), 200, 0, 10, collector.PlatformRIS),
	}
	v := Validate(events, nil)
	if v.FalsePrefixes != 1 {
		t.Fatalf("false prefixes = %d", v.FalsePrefixes)
	}
	var empty Validation
	if empty.Recall() != 0 || empty.IXPRecall() != 0 {
		t.Fatal("empty validation should report zero recall")
	}
}

func TestMaliciousActivityAggregates(t *testing.T) {
	var events []*core.Event
	for i := 0; i < 3000; i++ {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{31, byte(i >> 8), byte(i), 7}), 32)
		events = append(events, mkEvent(p.String(), asRef(100), 200, 0, 10, collector.PlatformRIS))
	}
	rows := MaliciousActivity(events, 100, 103, 42)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total != 3000 {
			t.Fatalf("total = %d", r.Total)
		}
		if r.AnySuspicious == 0 {
			t.Fatal("no suspicious prefixes at all")
		}
		// >90% of prober/scanner matches are probers (§8).
		matches := r.Probers + r.Scanners + r.Both
		if matches > 0 && float64(r.Probers+r.Both)/float64(matches) < 0.8 {
			t.Fatalf("prober share too low: %+v", r)
		}
		// Union ~2% of prefixes.
		if f := float64(r.AnySuspicious) / float64(r.Total); f > 0.05 {
			t.Fatalf("suspicious fraction = %v", f)
		}
	}
}
