package analysis

import (
	"net/netip"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/workload"
)

// Validation compares inferred events against the ground-truth intents
// that generated them — the §10 passive-measurement validation, where
// the authors confirmed 99.5% visibility of route-server blackholing
// events at collaborating IXPs, and the §5.2 observation that the
// overall inference is a lower bound.
type Validation struct {
	// Intents is the ground-truth population (well-formed ones only).
	Intents int
	// DetectedPrefixOnsets counts intents whose prefix appears in at
	// least one inferred event overlapping the intent's activity.
	DetectedPrefixOnsets int
	// IXPIntents / DetectedIXPIntents restrict to intents that used a
	// route server (the population with near-total visibility).
	IXPIntents         int
	DetectedIXPIntents int
	// FalsePrefixes counts inferred prefixes never present in any
	// intent (should be zero: the methodology has no false-positive
	// source besides community collisions, which the dictionary
	// validation removes).
	FalsePrefixes int
}

// Recall returns the overall detection recall.
func (v Validation) Recall() float64 {
	if v.Intents == 0 {
		return 0
	}
	return float64(v.DetectedPrefixOnsets) / float64(v.Intents)
}

// IXPRecall returns recall over route-server intents.
func (v Validation) IXPRecall() float64 {
	if v.IXPIntents == 0 {
		return 0
	}
	return float64(v.DetectedIXPIntents) / float64(v.IXPIntents)
}

// Validate scores events against ground-truth intents.
func Validate(events []*core.Event, intents []workload.Intent) Validation {
	var v Validation
	detected := map[netip.Prefix]bool{}
	for _, ev := range events {
		detected[ev.Prefix] = true
	}
	truth := map[netip.Prefix]bool{}
	for _, in := range intents {
		if !in.Prefix.IsValid() || in.Misconfigured {
			continue
		}
		truth[in.Prefix] = true
		v.Intents++
		if detected[in.Prefix] {
			v.DetectedPrefixOnsets++
		}
		if len(in.IXPs) > 0 {
			v.IXPIntents++
			if detected[in.Prefix] {
				v.DetectedIXPIntents++
			}
		}
	}
	for p := range detected {
		if !truth[p] {
			v.FalsePrefixes++
		}
	}
	return v
}
