package bgpblackholing

import (
	"testing"

	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/topology"
)

func smallPipeline(t testing.TB) *Pipeline {
	t.Helper()
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineBuilds(t *testing.T) {
	p := smallPipeline(t)
	if len(p.Topo.Order) == 0 || len(p.Deploy.Collectors) == 0 || len(p.Corpus) == 0 {
		t.Fatal("pipeline incomplete")
	}
	if len(p.Dict.Providers()) == 0 || len(p.Dict.IXPs()) == 0 {
		t.Fatal("dictionary empty")
	}
}

func TestRunWindowProducesEvents(t *testing.T) {
	p := smallPipeline(t)
	res := p.RunWindow(800, 805)
	if len(res.Events) == 0 {
		t.Fatal("no events inferred")
	}
	// Events must reference real providers from the dictionary and have
	// sane time bounds.
	for _, ev := range res.Events {
		if len(ev.Providers) == 0 {
			t.Fatal("event without providers")
		}
		if ev.End.Before(ev.Start) {
			t.Fatal("event ends before it starts")
		}
		// Events start within the window; long-lived ones may end after
		// it (their withdrawals are part of the materialized stream).
		if ev.Start.Before(res.WindowStart) {
			t.Fatalf("event starts %v before window %v", ev.Start, res.WindowStart)
		}
		for pr := range ev.Providers {
			switch pr.Kind {
			case core.ProviderAS:
				as := p.Topo.AS(pr.ASN)
				if as == nil || as.Blackholing == nil {
					t.Fatalf("event names non-provider %v", pr)
				}
			case core.ProviderIXP:
				if p.Topo.IXPs[pr.IXPID].Blackholing == nil {
					t.Fatalf("event names non-blackholing IXP %v", pr)
				}
			}
		}
	}
	if res.InferStats == nil || len(res.InferStats.Stats) == 0 {
		t.Fatal("no inference statistics")
	}
	if len(res.LastDayResults) == 0 {
		t.Fatal("no last-day propagation results")
	}
}

func TestRunWindowDeterministic(t *testing.T) {
	p1 := smallPipeline(t)
	p2 := smallPipeline(t)
	r1 := p1.RunWindow(800, 802)
	r2 := p2.RunWindow(800, 802)
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(r1.Events), len(r2.Events))
	}
}

func TestMostBlackholedPrefixesAreHostRoutes(t *testing.T) {
	p := smallPipeline(t)
	res := p.RunWindow(795, 805)
	n32, total := 0, 0
	for _, ev := range res.Events {
		if !ev.Prefix.Addr().Is4() {
			continue
		}
		total++
		if ev.Prefix.Bits() == 32 {
			n32++
		}
	}
	if total == 0 {
		t.Fatal("no IPv4 events")
	}
	if frac := float64(n32) / float64(total); frac < 0.9 {
		t.Fatalf("/32 fraction = %.2f, want ~0.98", frac)
	}
}

func TestBundlingContributesNoPathInferences(t *testing.T) {
	p := smallPipeline(t)
	res := p.RunWindow(795, 805)
	noPath, total := 0, 0
	for _, ev := range res.Events {
		for _, d := range ev.ASDistances {
			total++
			if d == core.NoPath {
				noPath++
			}
		}
	}
	if total == 0 {
		t.Fatal("no distance samples")
	}
	frac := float64(noPath) / float64(total)
	if frac < 0.2 {
		t.Fatalf("no-path fraction = %.2f, want substantial (paper ~0.5)", frac)
	}
}

func TestTableHelpers(t *testing.T) {
	p := smallPipeline(t)
	res := p.RunWindow(800, 803)
	if rows := p.Table1(); len(rows) != 5 {
		t.Fatalf("table1 rows = %d", len(rows))
	}
	if rows := p.Table2(res.InferStats); len(rows) != 6 {
		t.Fatalf("table2 rows = %d", len(rows))
	}
	rows3 := p.Table3(res.Events)
	if len(rows3) != 5 {
		t.Fatalf("table3 rows = %d", len(rows3))
	}
	all := rows3[len(rows3)-1]
	if all.Providers == 0 || all.Prefixes == 0 {
		t.Fatalf("table3 ALL row empty: %+v", all)
	}
	rows4 := p.Table4(res.Events)
	var ta, ixp int
	for _, r := range rows4 {
		switch r.Type {
		case topology.KindTransitAccess:
			ta = r.Prefixes
		case topology.KindIXP:
			ixp = r.Prefixes
		}
	}
	if ta == 0 {
		t.Fatal("no transit/access blackholing in table4")
	}
	_ = ixp // IXP visibility depends on adoption; checked in benches
}

func TestCDNSeesMostProviders(t *testing.T) {
	p := smallPipeline(t)
	res := p.RunWindow(790, 805)
	rows := p.Table3(res.Events)
	byName := map[string]int{}
	for _, r := range rows {
		byName[r.Source] = r.Providers
	}
	if byName["CDN"] < byName["RIS"] || byName["CDN"] < byName["RV"] {
		t.Fatalf("CDN providers %d should lead RIS %d / RV %d",
			byName["CDN"], byName["RIS"], byName["RV"])
	}
	_ = collector.PlatformCDN
}
