package bgpblackholing

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NewStoreHandler serves a Store over HTTP: longitudinal blackholing
// queries as JSON or NDJSON, plus store-backed reproductions of the
// paper's aggregations. p may be nil; the table endpoints, which need
// the deployment and topology, then answer 503.
//
// Routes (all GET):
//
//	/healthz                       liveness + event count
//	/stats                         store shape (segments, span, indexes)
//	/events                        query; filters via parameters:
//	    from, to          RFC 3339 timestamps (span overlap)
//	    prefix            IP prefix or address
//	    mode              exact | lpm | covered | covering
//	    origin            blackholing user ASN
//	    provider          AS3356 | ixp:4
//	    community         dictionary community ("3356:9999")
//	    min_duration,
//	    max_duration      Go durations ("90s", "1h30m")
//	    limit             max events returned (JSON responses default
//	                      to 10000; pass an explicit limit to raise it)
//	    enrich            1 | true: annotate each event with RPKI
//	                      validity, community documentation status and
//	                      a legitimacy verdict (needs the pipeline's
//	                      world; 503 otherwise)
//	    format            json (default) | ndjson (streaming, uncapped;
//	                      also via the Accept: application/x-ndjson
//	                      header)
//	/legitimacy                    legitimacy summary over the same
//	                               filter params: verdict, RPKI-state
//	                               and community-doc histograms (needs
//	                               pipeline)
//	/figure4?start=&days=&every=   daily longitudinal series
//	/figure8?timeout=              duration distributions (raw/grouped)
//	/table3                        visibility overview (needs pipeline)
//	/table4                        visibility by provider type (needs pipeline)
//
// With HandlerOptions.Hub set, the alerting surface is added:
//
//	GET  /watch?rule=...           SSE stream of matching alerts
//	                               (repeatable rule param filters; none
//	                               means all rules; Last-Event-ID or
//	                               last_id resumes from the replay ring;
//	                               ": heartbeat" comments keep the
//	                               connection alive)
//	GET  /rules                    list compiled rules
//	POST /rules                    upsert one rule (JSON object or the
//	                               compact "name=x prefix=..." syntax)
//	DELETE /rules/{name}           remove one rule
//
// With HandlerOptions.Telemetry set, GET /metrics serves the Prometheus
// text exposition and every route is wrapped in the request middleware;
// with Pprof set, net/http/pprof mounts under /debug/pprof/ (behind
// AuthToken, like everything except /healthz).
//
// When p carries a world, its annotator (registry + dictionary) powers
// enrich=1 and /legitimacy; without a pipeline the handler falls back
// to an annotator attached to the store (Store.SetAnnotator), and a
// bare store-only handler serves everything else unchanged.
func NewStoreHandler(st *Store, p *Pipeline) http.Handler {
	return NewStoreHandlerWith(st, p, HandlerOptions{})
}

// HandlerOptions hardens the HTTP API for exposure beyond localhost.
// The zero value — no auth, no rate limit — preserves NewStoreHandler's
// open behavior.
type HandlerOptions struct {
	// AuthToken, when non-empty, requires every request (except
	// /healthz, so liveness probes keep working) to carry
	// "Authorization: Bearer <token>"; anything else is a 401.
	AuthToken string
	// RateLimit, when positive, is the per-client steady-state request
	// rate (requests/second, token bucket keyed by client IP); excess
	// requests get a 429. /healthz is exempt.
	RateLimit float64
	// RateBurst is the bucket depth — how many requests a client may
	// burst above the steady rate. Defaults to max(10, ceil(RateLimit)).
	RateBurst int
	// Detector, when non-nil, adds the live fan-out counters (drops,
	// evictions, per-subscriber queue depth) to /stats.
	Detector *Detector
	// Hub, when non-nil, serves the alerting surface: the /watch SSE
	// stream, /rules CRUD (behind AuthToken like every other route),
	// and hub delivery counters in the /stats detector section.
	Hub *AlertHub
	// WatchHeartbeat is the SSE heartbeat-comment interval on /watch.
	// Defaults to 15s.
	WatchHeartbeat time.Duration
	// Telemetry, when non-nil, serves GET /metrics (Prometheus text
	// exposition) and wraps every route in the request middleware
	// (per-route counter with status-class label, in-flight gauge,
	// duration histogram).
	Telemetry *Telemetry
	// Pprof mounts net/http/pprof under /debug/pprof/. Like every
	// route except /healthz it sits behind AuthToken when one is set.
	Pprof bool
	// RedialSources, when non-empty, folds each source's session
	// counters into /stats and makes /healthz report degraded when a
	// source has exhausted its retry budget.
	RedialSources []*RedialSource
}

// NewStoreHandlerWith is NewStoreHandler plus live-exposure hardening:
// optional bearer-token auth and a per-client token-bucket rate limit.
func NewStoreHandlerWith(st *Store, p *Pipeline, opts HandlerOptions) http.Handler {
	h := &storeHandler{st: st, p: p, be: NewStoreBackend(st, p),
		det: opts.Detector, hub: opts.Hub,
		redials: opts.RedialSources, heartbeat: opts.WatchHeartbeat}
	if h.heartbeat <= 0 {
		h.heartbeat = 15 * time.Second
	}
	if p != nil {
		h.ann = p.Annotator()
	}
	mux := http.NewServeMux()
	// handle wraps each route in the telemetry middleware at
	// registration time, so the route label is the static mux pattern —
	// no per-request pattern lookup, and streaming handlers keep their
	// Flusher through the status-recording writer.
	handle := func(pattern string, fn http.Handler) {
		if opts.Telemetry != nil {
			fn = opts.Telemetry.instrument(pattern, fn)
		}
		mux.Handle(pattern, fn)
	}
	handle("GET /healthz", http.HandlerFunc(h.healthz))
	handle("GET /stats", http.HandlerFunc(h.stats))
	handle("GET /events", http.HandlerFunc(h.events))
	handle("GET /legitimacy", http.HandlerFunc(h.legitimacy))
	handle("GET /figure4", http.HandlerFunc(h.figure4))
	handle("GET /figure8", http.HandlerFunc(h.figure8))
	handle("GET /table3", http.HandlerFunc(h.table3))
	handle("GET /table4", http.HandlerFunc(h.table4))
	if opts.Hub != nil {
		handle("GET /watch", http.HandlerFunc(h.watch))
		handle("GET /rules", http.HandlerFunc(h.rulesList))
		handle("POST /rules", http.HandlerFunc(h.rulesUpsert))
		handle("DELETE /rules/{name}", http.HandlerFunc(h.rulesDelete))
	}
	if opts.Telemetry != nil {
		handle("GET /metrics", opts.Telemetry.MetricsHandler())
	}
	if opts.Pprof {
		// Index serves /debug/pprof/{heap,goroutine,...} lookups itself;
		// the handler-backed profiles need their own routes.
		handle("GET /debug/pprof/", http.HandlerFunc(pprof.Index))
		handle("GET /debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
		handle("GET /debug/pprof/profile", http.HandlerFunc(pprof.Profile))
		handle("GET /debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
		handle("GET /debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	}
	var handler http.Handler = mux
	if opts.RateLimit > 0 {
		burst := opts.RateBurst
		if burst <= 0 {
			burst = max(10, int(opts.RateLimit+0.999))
		}
		handler = rateLimitMiddleware(handler, opts.RateLimit, burst)
	}
	if opts.AuthToken != "" {
		handler = authMiddleware(handler, opts.AuthToken)
	}
	return handler
}

// authMiddleware enforces a bearer token on everything but /healthz.
func authMiddleware(next http.Handler, token string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(token)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="bgpblackholing"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// rateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, one request spends one token.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	clients map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxRateClients caps the client map; past it, the stalest buckets are
// pruned (they refill to full burst while idle anyway).
const maxRateClients = 4096

func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[key]
	if b == nil {
		if len(l.clients) >= maxRateClients {
			l.pruneLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets idle long enough to have refilled fully —
// indistinguishable from a fresh client.
func (l *rateLimiter) pruneLocked(now time.Time) {
	full := l.burst / l.rate // seconds to refill from empty
	for k, b := range l.clients {
		if now.Sub(b.last).Seconds() >= full {
			delete(l.clients, k)
		}
	}
}

// rateLimitMiddleware enforces a per-client-IP token bucket on
// everything but /healthz.
func rateLimitMiddleware(next http.Handler, rate float64, burst int) http.Handler {
	l := &rateLimiter{rate: rate, burst: float64(burst), clients: map[string]*tokenBucket{}}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		key := r.RemoteAddr
		if host, _, err := net.SplitHostPort(key); err == nil {
			key = host
		}
		if !l.allow(key, time.Now()) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		next.ServeHTTP(w, r)
	})
}

type storeHandler struct {
	st *Store
	p  *Pipeline
	be Backend // the store behind the Backend query surface

	det       *Detector       // optional: fan-out counters on /stats
	hub       *AlertHub       // optional: /watch, /rules, hub counters
	redials   []*RedialSource // optional: session counters on /stats, readiness on /healthz
	heartbeat time.Duration
	// ann is the pipeline's annotator when the handler was built with a
	// world; otherwise annotator() falls back to the store's — resolved
	// per request, so Store.SetAnnotator works before or after
	// NewStoreHandler.
	ann *Annotator
}

// annotator resolves the enrichment annotator for a request, or nil.
func (h *storeHandler) annotator() *Annotator {
	if h.ann != nil {
		return h.ann
	}
	return h.st.Annotator()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// healthz is liveness + readiness in one probe. Liveness is implicit
// (the handler answered); readiness degrades — and the status code
// becomes 503 — when the write path is in a known-bad state: a wounded
// active segment awaiting failover, a parked async group-commit fsync
// error no caller has seen yet, or a redial source whose retry budget
// is exhausted. The historical keys ("status", "events") survive so
// existing probes keep parsing.
func (h *storeHandler) healthz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]string{}
	sh := h.st.s.Health()
	if sh.WoundedSegment {
		checks["store_segment"] = "wounded active segment pending failover"
	}
	if sh.AsyncSyncError != "" {
		checks["store_fsync"] = "parked async fsync error: " + sh.AsyncSyncError
	}
	if sh.HydrationError != "" {
		checks["store_hydration"] = "cold segment hydration failed; queries may see partial data: " + sh.HydrationError
	}
	for _, src := range h.redials {
		if src.Stats().GaveUp != 0 {
			checks["redial:"+src.Addr()] = "retry budget exhausted; feed ended"
		}
	}
	body := map[string]any{"status": "ok", "events": h.st.Len()}
	if len(checks) > 0 {
		body["status"] = "degraded"
		body["checks"] = checks
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
		return
	}
	writeJSON(w, body)
}

// detectorStats is the live fan-out section of /stats: the atomic
// drop/evict counters, the mutex-guarded per-subscriber snapshots, and
// — now that the engine's counters are atomics — the full engine
// Metrics snapshot, the same numbers /metrics scrapes.
type detectorStats struct {
	SubscriberDrops     uint64            `json:"subscriber_drops"`
	SubscriberEvictions uint64            `json:"subscriber_evictions"`
	Subscribers         []SubscriberStats `json:"subscribers"`
	// Engine is the inference engine's counter snapshot (updates,
	// detections, events opened/closed).
	Engine *Metrics `json:"engine,omitempty"`
	// Alerts carries the alerting hub's delivery counters (watcher
	// drops, webhook retries/dead-letters) when a hub is attached.
	Alerts *AlertHubStats `json:"alerts,omitempty"`
	// Redial lists each live source's session-lifecycle counters
	// (dials, establishes, reseeds, backoffs, gave-up).
	Redial []RedialStats `json:"redial,omitempty"`
}

func (h *storeHandler) stats(w http.ResponseWriter, r *http.Request) {
	if h.det == nil && h.hub == nil && len(h.redials) == 0 {
		writeJSON(w, h.st.Stats())
		return
	}
	ds := detectorStats{}
	if h.det != nil {
		m := h.det.Metrics()
		ds.SubscriberDrops = m.SubscriberDrops
		ds.SubscriberEvictions = m.SubscriberEvictions
		ds.Subscribers = h.det.SubscriberStats()
		ds.Engine = &m
	}
	if h.hub != nil {
		hs := h.hub.Stats()
		ds.Alerts = &hs
	}
	for _, src := range h.redials {
		ds.Redial = append(ds.Redial, src.Stats())
	}
	// Embedding flattens the store fields so clients decoding into
	// StoreStats keep working.
	writeJSON(w, struct {
		StoreStats
		Detector detectorStats `json:"detector"`
	}{StoreStats: h.st.Stats(), Detector: ds})
}

// parseQuery builds a Query from request parameters.
func parseQuery(r *http.Request) (Query, error) {
	var q Query
	get := r.URL.Query().Get
	if s := get("from"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return q, fmt.Errorf("from: %v", err)
		}
		q.From = t
	}
	if s := get("to"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return q, fmt.Errorf("to: %v", err)
		}
		q.To = t
	}
	if s := get("prefix"); s != "" {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			// A bare address means its host prefix — the point-lookup shape.
			a, aerr := netip.ParseAddr(s)
			if aerr != nil {
				return q, fmt.Errorf("prefix: %v", err)
			}
			p = netip.PrefixFrom(a, a.BitLen())
		}
		q.Prefix = p
	}
	if s := get("mode"); s != "" {
		m, err := ParsePrefixMode(s)
		if err != nil {
			return q, err
		}
		q.Mode = m
	}
	if s := get("origin"); s != "" {
		asn, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			return q, fmt.Errorf("origin: %v", err)
		}
		q.OriginASN = ASN(asn)
	}
	if s := get("provider"); s != "" {
		pr, err := ParseProviderRef(s)
		if err != nil {
			return q, err
		}
		q.Provider = &pr
	}
	if s := get("community"); s != "" {
		c, err := ParseCommunity(s)
		if err != nil {
			return q, err
		}
		q.Community = c
	}
	if s := get("min_duration"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return q, fmt.Errorf("min_duration: %v", err)
		}
		if d < 0 {
			return q, fmt.Errorf("min_duration: negative duration %q", s)
		}
		q.MinDuration = d
	}
	if s := get("max_duration"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return q, fmt.Errorf("max_duration: %v", err)
		}
		if d < 0 {
			return q, fmt.Errorf("max_duration: negative duration %q", s)
		}
		q.MaxDuration = d
	}
	if s := get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("limit: bad value %q", s)
		}
		q.Limit = n
	}
	if s := get("enrich"); s != "" {
		on, err := strconv.ParseBool(s)
		if err != nil {
			return q, fmt.Errorf("enrich: bad value %q", s)
		}
		q.Enrich = on
	}
	return q, nil
}

// defaultJSONLimit caps an /events JSON response when the client sets
// no limit: the whole result materializes as one indented document, so
// an uncapped query over a production-scale store would balloon the
// server. NDJSON has no default cap — records stream one per line;
// pass an explicit limit to raise the JSON cap.
const defaultJSONLimit = 10000

func (h *storeHandler) events(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ann := h.annotator()
	if q.Enrich && ann == nil {
		httpError(w, http.StatusServiceUnavailable, "enrichment needs the pipeline's registry and dictionary; run the server with a world")
		return
	}
	ndjson := r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	if ndjson {
		streamRecordLines(r.Context(), w, h.be, q)
		return
	}
	if q.Limit <= 0 {
		q.Limit = defaultJSONLimit
	}
	serveEventsJSON(r.Context(), w, h.be, q)
}

// backendError maps a Backend failure onto an HTTP response: the
// no-annotator sentinel keeps its historical 503, anything else —
// which for a federated backend means every shard failed — is a 502.
func backendError(w http.ResponseWriter, err error) {
	if errors.Is(err, errNoAnnotator) {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	httpError(w, http.StatusBadGateway, "%v", err)
}

// shardsFailedHeader exposes partial-result degradation: when any
// shard of a federated backend failed to answer, the response is still
// 200 but carries X-Shards-Failed so callers can tell complete answers
// from degraded ones. Single-store backends never set it.
func shardsFailedHeader(w http.ResponseWriter, failed int) {
	if failed > 0 {
		w.Header().Set("X-Shards-Failed", strconv.Itoa(failed))
	}
}

// serveEventsJSON answers the JSON /events shape from any Backend.
// The envelope (and its byte layout) is unchanged from the pre-Backend
// handler.
func serveEventsJSON(ctx context.Context, w http.ResponseWriter, be Backend, q Query) {
	rs, err := be.Records(ctx, q)
	if err != nil {
		backendError(w, err)
		return
	}
	shardsFailedHeader(w, rs.ShardsFailed)
	writeJSON(w, map[string]any{
		"total":      rs.Total,
		"returned":   len(rs.Records),
		"scanned":    rs.Scanned,
		"elapsed_us": rs.Elapsed.Microseconds(),
		"events":     rs.Records,
	})
}

// streamRecordLines writes one event record per line, flushing
// periodically. The lines drain Backend.RecordLines incrementally —
// "streaming, uncapped" is literal: nothing is materialized ahead of
// the wire, however many events match. The stream is opened (and, for
// a federation, every shard primed) before the first byte, so the
// X-Shards-Failed header can still be set; a shard dying mid-stream
// after that shows up in counters, not in this response.
func streamRecordLines(ctx context.Context, w http.ResponseWriter, be Backend, q Query) {
	rs, err := be.RecordLines(ctx, q)
	if err != nil {
		backendError(w, err)
		return
	}
	defer rs.Close()
	shardsFailedHeader(w, rs.ShardsFailed)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	i := 0
	for {
		rl, err := rs.Next()
		if err != nil {
			break // io.EOF, client cancellation, or a dead source
		}
		if _, err := w.Write(rl.Line); err != nil {
			return // client went away
		}
		if _, err := w.Write(nl); err != nil {
			return
		}
		if flusher != nil && i%256 == 255 {
			flusher.Flush()
		}
		i++
	}
	if flusher != nil {
		flusher.Flush()
	}
}

var nl = []byte{'\n'}

// legitimacy aggregates the legitimacy view over every event matching
// the filter params: verdict, folded RPKI-state and community-doc
// histograms. The store streams through the annotator — no result set
// is materialized.
func (h *storeHandler) legitimacy(w http.ResponseWriter, r *http.Request) {
	ann := h.annotator()
	if ann == nil {
		httpError(w, http.StatusServiceUnavailable, "legitimacy needs the pipeline's registry and dictionary; run the server with a world")
		return
	}
	q, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	serveLegitimacy(r.Context(), w, h.be, q)
}

// serveLegitimacy answers /legitimacy from any Backend (same JSON keys
// as the historical inline aggregation).
func serveLegitimacy(ctx context.Context, w http.ResponseWriter, be Backend, q Query) {
	sum, err := be.LegitimacySummary(ctx, q)
	if err != nil {
		if ctx.Err() != nil {
			return // client went away; nothing to write
		}
		backendError(w, err)
		return
	}
	shardsFailedHeader(w, sum.ShardsFailed)
	writeJSON(w, sum)
}

func (h *storeHandler) figure4(w http.ResponseWriter, r *http.Request) {
	serveFigure4(w, r, h.be)
}

// serveFigure4 answers /figure4 from any Backend. shape=sets serves
// the mergeable per-day entity sets instead of the counted series —
// the form one federation tier ships to the next so distinct-entity
// counts stay exact across shards.
func serveFigure4(w http.ResponseWriter, r *http.Request, be Backend) {
	ctx := r.Context()
	get := r.URL.Query().Get
	sets := get("shape") == "sets"
	stats, err := be.Stats(ctx)
	if err != nil {
		backendError(w, err)
		return
	}
	start := stats.MinStart
	if s := get("start"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			httpError(w, http.StatusBadRequest, "start: %v", err)
			return
		}
		start = t
	}
	if start.IsZero() {
		if sets {
			writeJSON(w, &Figure4Sets{})
			return
		}
		writeJSON(w, []DailyPoint{})
		return
	}
	start = start.UTC().Truncate(24 * time.Hour)
	days := int(stats.MaxEnd.Sub(start).Hours()/24) + 1
	if s := get("days"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "days: bad value %q", s)
			return
		}
		days = n
	}
	// A start past the store's span yields nothing; a start far before
	// it would make the daily series explode — both are caller errors.
	const maxFigure4Days = 36600
	if days <= 0 {
		if sets {
			writeJSON(w, &Figure4Sets{})
			return
		}
		writeJSON(w, []DailyPoint{})
		return
	}
	if days > maxFigure4Days {
		httpError(w, http.StatusBadRequest, "series of %d days exceeds the %d-day cap; pass an explicit start and days", days, maxFigure4Days)
		return
	}
	if sets {
		fs, err := be.Figure4Sets(ctx, start, days)
		if err != nil {
			backendError(w, err)
			return
		}
		writeJSON(w, fs)
		return
	}
	res, err := be.Figure4(ctx, start, days)
	if err != nil {
		backendError(w, err)
		return
	}
	series := res.Series
	if s := get("every"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "every: bad value %q", s)
			return
		}
		var sampled []DailyPoint
		for i := 0; i < len(series); i += n {
			sampled = append(sampled, series[i])
		}
		series = sampled
	}
	shardsFailedHeader(w, res.ShardsFailed)
	writeJSON(w, series)
}

func (h *storeHandler) figure8(w http.ResponseWriter, r *http.Request) {
	timeout := DefaultGroupTimeout
	if s := r.URL.Query().Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			httpError(w, http.StatusBadRequest, "timeout: %v", err)
			return
		}
		if d <= 0 {
			httpError(w, http.StatusBadRequest, "timeout: grouping timeout must be positive, got %q", s)
			return
		}
		timeout = d
	}
	ungrouped, grouped := h.st.Figure8(timeout)
	toSecs := func(ds []time.Duration) []float64 {
		out := make([]float64, len(ds))
		for i, d := range ds {
			out[i] = d.Seconds()
		}
		return out
	}
	writeJSON(w, map[string]any{
		"timeout_seconds":   timeout.Seconds(),
		"ungrouped_seconds": toSecs(ungrouped),
		"grouped_seconds":   toSecs(grouped),
		"ungrouped_events":  len(ungrouped),
		"grouped_periods":   len(grouped),
	})
}

func (h *storeHandler) table3(w http.ResponseWriter, r *http.Request) {
	if h.p == nil {
		httpError(w, http.StatusServiceUnavailable, "table3 needs the pipeline's deployment; run the server with a world")
		return
	}
	writeJSON(w, h.p.Table3FromStore(h.st))
}

func (h *storeHandler) table4(w http.ResponseWriter, r *http.Request) {
	if h.p == nil {
		httpError(w, http.StatusServiceUnavailable, "table4 needs the pipeline's topology; run the server with a world")
		return
	}
	writeJSON(w, h.p.Table4FromStore(h.st))
}

// watch serves the SSE alert stream: one "alert" event per matched
// alert (id = the monotonic alert id, data = the AlertRecord JSON),
// with ": heartbeat" comments at the configured interval. Repeatable
// rule params filter to named rules; Last-Event-ID (or a last_id
// query param, for curl) resumes from the hub's replay ring. The
// watcher rides a bounded drop-oldest queue, so a stalled client
// loses old alerts rather than stalling the hub.
func (h *storeHandler) watch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var lastID uint64
	lastStr := r.Header.Get("Last-Event-ID")
	if s := r.URL.Query().Get("last_id"); s != "" {
		lastStr = s
	}
	if lastStr != "" {
		id, err := strconv.ParseUint(lastStr, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "last event id: bad value %q", lastStr)
			return
		}
		lastID = id
	}
	wt, err := h.hub.Watch(r.URL.Query()["rule"], lastID)
	if err != nil {
		var unknown *UnknownAlertRuleError
		if errors.As(err, &unknown) {
			httpError(w, http.StatusNotFound, "%v", err)
		} else {
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	defer wt.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": connected\n\n")
	flusher.Flush()

	ticker := time.NewTicker(h.heartbeat)
	defer ticker.Stop()
	done := r.Context().Done()
	for {
		select {
		case a, ok := <-wt.C():
			if !ok {
				return // hub shut down
			}
			payload := a.Payload()
			if payload == nil {
				continue // encode error, counted in hub stats
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", a.ID, payload); err != nil {
				return
			}
			flusher.Flush()
		case <-ticker.C:
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-done:
			return
		}
	}
}

func (h *storeHandler) rulesList(w http.ResponseWriter, r *http.Request) {
	rules := h.hub.Rules()
	// Render the compact syntax alongside the structured form, so
	// clients can round-trip either. The rule is a named field, not
	// embedded: embedding would promote Rule's MarshalJSON and swallow
	// the syntax field.
	type ruleOut struct {
		Rule   AlertRule `json:"rule"`
		Syntax string    `json:"syntax"`
	}
	out := make([]ruleOut, len(rules))
	for i, rule := range rules {
		out[i] = ruleOut{Rule: rule, Syntax: rule.String()}
	}
	writeJSON(w, map[string]any{"rules": out})
}

// maxRuleBody bounds a /rules POST: a rule is a short declaration, not
// a data upload.
const maxRuleBody = 64 << 10

// rulesUpsert adds or replaces one rule. The body is either a JSON
// rule object or the compact "name=x prefix=... " syntax.
func (h *storeHandler) rulesUpsert(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRuleBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxRuleBody {
		httpError(w, http.StatusRequestEntityTooLarge, "rule body exceeds %d bytes", maxRuleBody)
		return
	}
	var rule AlertRule
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal(body, &rule); err != nil {
			httpError(w, http.StatusBadRequest, "rule: %v", err)
			return
		}
	} else {
		rule, err = ParseRule(trimmed)
		if err != nil {
			httpError(w, http.StatusBadRequest, "rule: %v", err)
			return
		}
	}
	if err := h.hub.UpsertRule(rule); err != nil {
		httpError(w, http.StatusBadRequest, "rule: %v", err)
		return
	}
	writeJSON(w, map[string]any{"rule": rule, "syntax": rule.String(), "rules": len(h.hub.Rules())})
}

func (h *storeHandler) rulesDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !h.hub.DeleteRule(name) {
		httpError(w, http.StatusNotFound, "no rule named %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
