package bgpblackholing

import (
	"encoding/json"
	"net/http"
	"strings"
)

// RouterOptions configures NewRouterHandler, mirroring the subset of
// HandlerOptions that makes sense for a stateless query router.
type RouterOptions struct {
	// AuthToken, when non-empty, requires "Authorization: Bearer
	// <token>" on every route except /healthz.
	AuthToken string
	// RateLimit caps per-client requests/second (0 = unlimited);
	// RateBurst is the bucket size (default max(10, ceil(RateLimit))).
	RateLimit float64
	RateBurst int
	// Telemetry wires the router's routes through the request
	// middleware and serves GET /metrics, including the per-shard
	// federation counters (ObserveFederation is called for you).
	Telemetry *Telemetry
}

// NewRouterHandler serves a federated query tier over HTTP: the same
// read surface as NewStoreHandler, answered by fanning out to the
// federation's shard backends and merging. Routes:
//
//	/healthz       federation health; every shard is probed and a
//	               down or degraded shard surfaces as a
//	               "shard:<name>..." check (503), with the historical
//	               {"status","events"} keys intact
//	/stats         aggregated store shape (flat StoreStats keys, so
//	               existing decoders keep working) plus a
//	               version-tagged "shards" block with per-shard
//	               status and lifetime request/failure/hedge counters
//	/events        federated query; same parameters as the store
//	               handler, JSON or NDJSON, with limits pushed down
//	               per shard and re-applied after the global merge
//	/legitimacy    per-shard summaries, histograms summed
//	/figure4       per-shard per-day entity sets, unioned then
//	               counted (distinct counts stay exact across
//	               shards); shape=sets serves the mergeable form so
//	               routers can themselves be federated
//	/metrics       Prometheus exposition (with Telemetry)
//
// Partial results: when some (not all) shards fail, data routes answer
// 200 with the X-Shards-Failed header counting the missing shards, and
// /stats marks the shard "down" in the shards block. Only when every
// shard fails does a route answer 502.
//
// The aggregation endpoints that need the pipeline's world (/figure8,
// /table3, /table4) and the alerting surface are deliberately absent:
// they belong to the shard servers, not the router.
func NewRouterHandler(fed *FederatedStore, opts RouterOptions) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, fn http.Handler) {
		if opts.Telemetry != nil {
			fn = opts.Telemetry.instrument(pattern, fn)
		}
		mux.Handle(pattern, fn)
	}
	handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := fed.Healthz(r.Context())
		body := map[string]any{"status": h.Status, "events": h.Events}
		if h.Status != "ok" {
			body["checks"] = h.Checks
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(body)
			return
		}
		writeJSON(w, body)
	}))
	handle("GET /stats", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stats, err := fed.Stats(r.Context())
		if err != nil {
			backendError(w, err)
			return
		}
		writeJSON(w, stats)
	}))
	handle("GET /events", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := parseQuery(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if wantsNDJSON(r) {
			streamRecordLines(r.Context(), w, fed, q)
			return
		}
		if q.Limit <= 0 {
			q.Limit = defaultJSONLimit
		}
		serveEventsJSON(r.Context(), w, fed, q)
	}))
	handle("GET /legitimacy", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, err := parseQuery(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		serveLegitimacy(r.Context(), w, fed, q)
	}))
	handle("GET /figure4", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveFigure4(w, r, fed)
	}))
	if opts.Telemetry != nil {
		opts.Telemetry.ObserveFederation(fed)
		handle("GET /metrics", opts.Telemetry.MetricsHandler())
	}
	var handler http.Handler = mux
	if opts.RateLimit > 0 {
		burst := opts.RateBurst
		if burst <= 0 {
			burst = max(10, int(opts.RateLimit+0.999))
		}
		handler = rateLimitMiddleware(handler, opts.RateLimit, burst)
	}
	if opts.AuthToken != "" {
		handler = authMiddleware(handler, opts.AuthToken)
	}
	return handler
}

// ObserveFederation registers per-shard federation gauges and
// counters, labeled by shard name: lifetime request, failure and hedge
// counts plus an up/down gauge from the last stats fan-out.
func (t *Telemetry) ObserveFederation(fed *FederatedStore) {
	r := t.reg
	names := []string{"shard"}
	for i, b := range fed.backends {
		c := &fed.counters[i]
		values := []string{b.Name()}
		r.CounterFuncLabeled("bh_federation_shard_requests_total", "Fan-out requests sent to the shard.", names, values, c.requests.Load)
		r.CounterFuncLabeled("bh_federation_shard_failures_total", "Fan-out requests the shard failed to answer.", names, values, c.failures.Load)
		r.CounterFuncLabeled("bh_federation_shard_hedges_total", "Hedged retries raced against the shard's replicas.", names, values, c.hedges.Load)
	}
	r.GaugeFunc("bh_federation_shards", "Number of shards behind this router.", func() float64 {
		return float64(len(fed.backends))
	})
}

// wantsNDJSON reports whether the request asked for the streaming
// NDJSON shape, by parameter or Accept header — the same test the
// store handler applies.
func wantsNDJSON(r *http.Request) bool {
	return r.URL.Query().Get("format") == "ndjson" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}
