// Command bhreport runs the full reproduction end to end and prints
// every table and figure of the paper's evaluation: the dataset overview
// (Table 1), the communities dictionary (Table 2), blackhole visibility
// (Tables 3-4), the community prefix-length profile (Figure 2), the
// longitudinal growth series (Figure 4), prefix CDFs (Figure 5), country
// distributions (Figure 6), services / providers-per-event / AS-distance
// (Figure 7), durations (Figure 8) and data-plane efficacy (Figure 9).
//
// Usage:
//
//	bhreport [-scale 0.2] [-events 0.3] [-seed 42] [-full]
//
// -full replays the entire Dec 2014 – Mar 2017 timeline for Figure 4;
// otherwise only the Aug 2016 – Mar 2017 analysis window runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"bgpblackholing"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.2, "world scale (1.0 = paper scale)")
		events = flag.Float64("events", 0.3, "event volume scale")
		seed   = flag.Int64("seed", 42, "deterministic seed")
		full   = flag.Bool("full", false, "replay the full Dec 2014 - Mar 2017 timeline")
		csvDir = flag.String("csv", "", "also write plottable CSVs for the figure series into this directory")
	)
	flag.Parse()
	if err := run(*scale, *events, *seed, *full, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "bhreport:", err)
		os.Exit(1)
	}
}

// writeCSVs exports the figure series for plotting.
func writeCSVs(dir string, res *bgpblackholing.RunResult, full bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, f func(w *os.File) error) error {
		fh, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := f(fh); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}
	if full {
		series := bgpblackholing.Figure4(res.Events, bgpblackholing.TimelineStart, 850)
		if err := save("figure4_daily.csv", func(w *os.File) error {
			return bgpblackholing.WriteFigure4CSV(w, series)
		}); err != nil {
			return err
		}
	}
	ungrouped, grouped := bgpblackholing.Figure8(res.Events, bgpblackholing.DefaultGroupTimeout)
	if err := save("figure8_durations.csv", func(w *os.File) error {
		return bgpblackholing.WriteDurationsCSV(w, ungrouped, grouped)
	}); err != nil {
		return err
	}
	if err := save("figure7b_providers_per_event.csv", func(w *os.File) error {
		return bgpblackholing.WriteHistogramCSV(w, "providers", bgpblackholing.Figure7b(res.Events))
	}); err != nil {
		return err
	}
	if err := save("figure7c_as_distance.csv", func(w *os.File) error {
		return bgpblackholing.WriteHistogramCSV(w, "distance", bgpblackholing.Figure7c(res.Events))
	}); err != nil {
		return err
	}
	return save("events.csv", func(w *os.File) error {
		return bgpblackholing.WriteEventsCSV(w, res.Events)
	})
}

func section(name string) { fmt.Printf("\n=== %s ===\n", name) }

func run(scale, events float64, seed int64, full bool, csvDir string) error {
	opts := bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale,
		EventScale: events, Days: 850,
	}
	p, err := bgpblackholing.NewPipeline(opts)
	if err != nil {
		return err
	}
	fmt.Printf("world: %d ASes, %d IXPs, %d blackholing providers (+%d IXPs), dictionary: %d communities\n",
		len(p.Topo.Order), len(p.Topo.IXPs),
		len(p.Topo.BlackholingProviders()), len(p.Topo.BlackholingIXPs()),
		len(p.Dict.Entries()))

	from, to := 640, 850
	if full {
		from = 0
	}
	fmt.Printf("replaying timeline days [%d,%d)...\n", from, to)
	res, err := p.NewDetector().Run(context.Background(), p.Replay(from, to))
	if err != nil {
		return err
	}
	fmt.Printf("inferred %d blackholing events\n", len(res.Events))

	section("Table 1: BGP dataset overview (March 2017)")
	fmt.Print(bgpblackholing.FormatTable1(p.Table1()))

	section("Table 2: blackhole communities dictionary")
	fmt.Print(bgpblackholing.FormatTable2(p.Table2(res.InferStats)))

	section("Table 3: blackhole dataset overview")
	fmt.Print(bgpblackholing.FormatTable3(p.Table3(res.Events)))

	section("Table 4: blackhole visibility by provider type")
	fmt.Print(bgpblackholing.FormatTable4(p.Table4(res.Events)))

	section("Figure 2: community prefix-length profile")
	for _, r := range bgpblackholing.SummarizeFigure2(res.InferStats.Stats, p.Dict) {
		label := "non-blackhole"
		if r.IsBlackhole {
			label = "blackhole"
		}
		fmt.Printf("%-14s communities=%-4d mean frac on /32 = %.2f, on <=/24 = %.2f\n",
			label, r.Communities, r.MeanFracAt32, r.MeanFracAtOrPre24)
	}
	fmt.Printf("inferred undocumented blackhole communities: %d\n", len(res.InferStats.Inferred))

	if full {
		section("Figure 4: longitudinal growth (sampled)")
		series := bgpblackholing.Figure4(res.Events, bgpblackholing.TimelineStart, 850)
		fmt.Print(bgpblackholing.FormatFigure4(series, 60))
	}

	section("Figure 5: blackholed prefixes per provider / user type")
	transit, ixp := bgpblackholing.Figure5a(res.Events, p.Topo)
	tc, xc := bgpblackholing.NewCDFInts(transit), bgpblackholing.NewCDFInts(ixp)
	fmt.Printf("transit/access providers: n=%d median=%.0f p90=%.0f max=%.0f\n",
		tc.Len(), tc.Quantile(0.5), tc.Quantile(0.9), tc.Quantile(1))
	fmt.Printf("IXPs:                     n=%d median=%.0f p90=%.0f max=%.0f\n",
		xc.Len(), xc.Quantile(0.5), xc.Quantile(0.9), xc.Quantile(1))
	byKind := bgpblackholing.Figure5b(res.Events, p.Topo)
	for _, k := range bgpblackholing.Kinds() {
		if len(byKind[k]) == 0 {
			continue
		}
		c := bgpblackholing.NewCDFInts(byKind[k])
		fmt.Printf("users %-22s n=%-5d median=%.0f p90=%.0f\n", k, c.Len(), c.Quantile(0.5), c.Quantile(0.9))
	}

	section("Figure 6: per-country distribution")
	provs, users := bgpblackholing.Figure6(res.Events, p.Topo)
	fmt.Print("top provider countries: ")
	for _, c := range bgpblackholing.TopCountries(provs, 6) {
		fmt.Printf("%s=%d ", c.Country, c.Count)
	}
	fmt.Print("\ntop user countries:     ")
	for _, c := range bgpblackholing.TopCountries(users, 6) {
		fmt.Printf("%s=%d ", c.Country, c.Count)
	}
	fmt.Println()

	section("Figure 7a: services on blackholed prefixes")
	svcCounts := bgpblackholing.Figure7a(res.Events, seed)
	for _, svc := range []string{"HTTP", "HTTPS", "SSH", "FTP", "Telnet", "DNS", "NTP", "SMTP", "IMAP", "NONE"} {
		fmt.Printf("%-7s %d\n", svc, svcCounts[bgpblackholing.Service(svc)])
	}

	section("Figure 7b: providers per blackholing event")
	h := bgpblackholing.Figure7b(res.Events)
	multi := 0.0
	for _, k := range h.Keys() {
		if k > 1 {
			multi += h.Fraction(k)
		}
	}
	fmt.Printf("single-provider: %.0f%%  multi-provider: %.0f%%  max: %d\n",
		100*h.Fraction(1), 100*multi, h.Keys()[len(h.Keys())-1])

	section("Figure 7c: collector-provider AS distance")
	hc := bgpblackholing.Figure7c(res.Events)
	for _, k := range hc.Keys() {
		label := fmt.Sprint(k)
		if k == bgpblackholing.NoPath {
			label = "no-path"
		}
		fmt.Printf("%-8s %.1f%%\n", label, 100*hc.Fraction(k))
	}

	section("Figure 8: blackholing durations")
	ungrouped, grouped := bgpblackholing.Figure8(res.Events, bgpblackholing.DefaultGroupTimeout)
	cu, cg := bgpblackholing.NewCDFDurations(ungrouped), bgpblackholing.NewCDFDurations(grouped)
	fmt.Printf("ungrouped: n=%d  <=1min: %.0f%%\n", cu.Len(), 100*cu.FractionAtOrBelow(60))
	fmt.Printf("grouped:   n=%d  <=1min: %.0f%%  >16h: %.0f%%\n",
		cg.Len(), 100*cg.FractionAtOrBelow(60), 100*(1-cg.FractionAtOrBelow(16*3600)))

	section("Figure 9a/9b: data-plane efficacy (traceroute campaign)")
	sim := &bgpblackholing.TraceSimulator{Topo: p.Topo}
	r := rand.New(rand.NewSource(seed))
	var ms []bgpblackholing.PathMeasurement
	n := 0
	for _, pr := range res.LastDayResults {
		if n >= 60 || !pr.Prefix.IsValid() || !pr.Prefix.Addr().Is4() {
			continue
		}
		if len(pr.DroppingASes) == 0 {
			continue
		}
		bh := &bgpblackholing.BlackholeState{
			Prefix: pr.Prefix, DroppingASes: pr.DroppingASes,
			DroppingIXPMembers: pr.DroppingIXPMembers,
		}
		ms = append(ms, sim.MeasureEvent(pr.User, pr.Prefix, bh, r, 4)...)
		n++
	}
	sample := bgpblackholing.Figure9ab(ms)
	ci := bgpblackholing.NewCDFInts(sample.IPDiffs)
	ca := bgpblackholing.NewCDFInts(sample.ASDiffs)
	fmt.Printf("paths: n=%d  mean IP shortening=%.1f hops  shorter-during=%.0f%%  mean AS shortening=%.1f\n",
		ci.Len(), ci.Mean(), 100*(1-ci.FractionAtOrBelow(0)), ca.Mean())

	section("Figure 9c: IXP traffic to blackholed prefixes (one week)")
	var x *bgpblackholing.IXP
	for _, cand := range p.Topo.BlackholingIXPs() {
		if x == nil || len(cand.Members) > len(x.Members) {
			x = cand
		}
	}
	if x != nil {
		var victims []bgpblackholing.VictimSpec
		seen := map[netip.Prefix]bool{}
		for _, pr := range res.LastDayResults {
			if drops, ok := pr.DroppingIXPMembers[x.ID]; ok && !seen[pr.Prefix] && len(victims) < 3 {
				seen[pr.Prefix] = true
				victims = append(victims, bgpblackholing.VictimSpec{Prefix: pr.Prefix, Honoring: drops})
			}
		}
		start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
		series := bgpblackholing.SimulateIXPTraffic(x, victims, start, 7*24*time.Hour, bgpblackholing.DefaultIPFIXConfig())
		for i, s := range series {
			fmt.Printf("prefix %-18s drop fraction: %.0f%%\n", victims[i].Prefix, 100*bgpblackholing.DropFraction(s))
		}
	}
	section("RFC 7999 / RFC 5635 compliance scorecard (§11)")
	fmt.Print(bgpblackholing.AuditCompliance(res.Events).Format())

	section("Validation against ground truth (§10 passive validation)")
	cutoff := res.WindowEnd.AddDate(0, 0, -7)
	var weekEvents []*bgpblackholing.Event
	for _, ev := range res.Events {
		if !ev.Start.Before(cutoff) {
			weekEvents = append(weekEvents, ev)
		}
	}
	v := bgpblackholing.Validate(weekEvents, res.LastDayIntents)
	fmt.Printf("last-week intents: %d  detected: %d (recall %.0f%%)\n",
		v.Intents, v.DetectedPrefixOnsets, 100*v.Recall())
	fmt.Printf("route-server intents: %d  detected: %d (recall %.0f%%; paper confirms 99.5%% RS visibility)\n",
		v.IXPIntents, v.DetectedIXPIntents, 100*v.IXPRecall())

	if csvDir != "" {
		if err := writeCSVs(csvDir, res, full); err != nil {
			return fmt.Errorf("write CSVs: %w", err)
		}
		fmt.Printf("\nwrote figure CSVs to %s\n", csvDir)
	}
	return nil
}
