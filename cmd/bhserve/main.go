// Command bhserve runs a live blackholing detector: it listens for BGP
// sessions on a TCP port (like a RIPE RIS collector), feeds every
// received UPDATE through the inference engine, and prints blackholing
// events as they close — the §10 near-real-time workflow as a daemon.
//
// Usage:
//
//	bhserve -listen 127.0.0.1:1790 -scale 0.15 -seed 42
//
// Point any RFC 4271 speaker at it (examples/livefeed shows a client);
// updates tagged with dictionary communities start events, withdrawals
// and untagged re-announcements close them. SIGINT flushes open events
// and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"sort"
	"time"

	"bgpblackholing"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:1790", "listen address for BGP sessions")
		scale  = flag.Float64("scale", 0.15, "world scale (dictionary + topology)")
		seed   = flag.Int64("seed", 42, "deterministic seed")
		asn    = flag.Uint("asn", 64900, "local AS number")
	)
	flag.Parse()
	if err := run(*listen, *scale, *seed, uint32(*asn)); err != nil {
		fmt.Fprintln(os.Stderr, "bhserve:", err)
		os.Exit(1)
	}
}

func run(listen string, scale float64, seed int64, asn uint32) error {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale, EventScale: scale, Days: 850,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("bhserve: dictionary with %d communities, listening on %s (AS%d)\n",
		len(p.Dict.Entries()), ln.Addr(), asn)

	// The live feed: every accepted BGP session publishes its updates
	// into the source the detector drains.
	live := bgpblackholing.NewLiveSource()
	serveRes := make(chan error, 1)
	go func() {
		// ServeBGP closes the feed on return, so Run below still drains
		// and reports; the error is re-checked after Run so a listener
		// death does not pass as a clean exit-0 shutdown.
		serveRes <- live.ServeBGP(ln, serveCfg(asn))
	}()

	// Events print the moment they close, not at shutdown.
	det := p.NewDetector()
	printed := make(chan struct{})
	sub := det.Subscribe()
	go func() {
		defer close(printed)
		for ev := range sub {
			printEvent(ev)
		}
	}()

	// SIGINT: stop accepting and close the feed; Run drains what is
	// buffered, flushes open events (they stream to the subscriber) and
	// returns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("\nbhserve: shutting down")
		ln.Close()
		live.Close()
	}()

	res, err := det.Run(context.Background(), live)
	if err != nil {
		return err
	}
	<-printed
	m := res.Metrics
	fmt.Printf("bhserve: %d updates (%d cleaned), %d detections, %d events (%d explicit / %d implicit ends)\n",
		m.UpdatesProcessed, m.UpdatesCleaned, m.Detections, m.EventsClosed, m.ExplicitEnds, m.ImplicitEnds)
	// A listener that died on its own (not via the SIGINT ln.Close) is a
	// failed run. ServeBGP may still be waiting on sessions lingering
	// past SIGINT, so don't block on it for long.
	select {
	case serr := <-serveRes:
		if serr != nil {
			return fmt.Errorf("listener failed: %w", serr)
		}
	case <-time.After(time.Second):
	}
	return nil
}

func serveCfg(asn uint32) bgpblackholing.BGPServerConfig {
	return bgpblackholing.BGPServerConfig{
		ASN:           bgpblackholing.ASN(asn),
		BGPID:         netip.MustParseAddr("10.255.0.1"),
		HoldTime:      90 * time.Second,
		CollectorName: "bhserve",
		Platform:      bgpblackholing.PlatformRIS,
		Logf: func(format string, args ...any) {
			fmt.Printf("bhserve: "+format+"\n", args...)
		},
	}
}

func printEvent(ev *bgpblackholing.Event) {
	var provs []string
	for pr := range ev.Providers {
		provs = append(provs, pr.String())
	}
	sort.Strings(provs)
	fmt.Printf("EVENT %s  %s - %s (%s)  providers=%v users=%d\n",
		ev.Prefix,
		ev.Start.Format(time.RFC3339), ev.End.Format(time.RFC3339),
		ev.Duration().Truncate(time.Second), provs, len(ev.Users))
}
