// Command bhserve runs a live blackholing detector: it listens for BGP
// sessions on a TCP port (like a RIPE RIS collector), feeds every
// received UPDATE through the inference engine, and prints blackholing
// events as they close — the §10 near-real-time workflow as a daemon.
//
// Usage:
//
//	bhserve -listen 127.0.0.1:1790 -scale 0.15 -seed 42
//
// Point any RFC 4271 speaker at it (examples/livefeed shows a client);
// updates tagged with dictionary communities start events, withdrawals
// and untagged re-announcements close them. SIGINT flushes open events
// and exits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"bgpblackholing"
	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/bgpd"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/stream"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:1790", "listen address for BGP sessions")
		scale  = flag.Float64("scale", 0.15, "world scale (dictionary + topology)")
		seed   = flag.Int64("seed", 42, "deterministic seed")
		asn    = flag.Uint("asn", 64900, "local AS number")
	)
	flag.Parse()
	if err := run(*listen, *scale, *seed, uint32(*asn)); err != nil {
		fmt.Fprintln(os.Stderr, "bhserve:", err)
		os.Exit(1)
	}
}

func run(listen string, scale float64, seed int64, asn uint32) error {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale, EventScale: scale, Days: 850,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("bhserve: dictionary with %d communities, listening on %s (AS%d)\n",
		len(p.Dict.Entries()), ln.Addr(), asn)

	live := stream.NewLive()
	var wg sync.WaitGroup

	// Acceptor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				live.Close()
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveSession(conn, asn, live)
			}()
		}
	}()

	// Engine loop with periodic event reporting.
	engine := core.NewEngine(p.Dict, p.Topo)
	reported := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			el, err := live.Next()
			if err != nil {
				return
			}
			engine.Process(el)
			for _, ev := range engine.Events()[reported:] {
				printEvent(ev)
				reported++
			}
		}
	}()

	// SIGINT: stop accepting, flush, report.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\nbhserve: shutting down")
	ln.Close()
	live.Close()
	<-done
	engine.Flush(time.Now().UTC())
	for _, ev := range engine.Events()[reported:] {
		printEvent(ev)
	}
	m := engine.Metrics()
	fmt.Printf("bhserve: %d updates (%d cleaned), %d detections, %d events (%d explicit / %d implicit ends)\n",
		m.UpdatesProcessed, m.UpdatesCleaned, m.Detections, m.EventsClosed, m.ExplicitEnds, m.ImplicitEnds)
	return nil
}

func serveSession(conn net.Conn, asn uint32, live *stream.Live) {
	sess, err := bgpd.Establish(conn, bgpd.Config{
		ASN:      bgp.ASN(asn),
		BGPID:    netip.MustParseAddr("10.255.0.1"),
		HoldTime: 90 * time.Second,
	})
	if err != nil {
		fmt.Printf("bhserve: handshake failed from %s: %v\n", conn.RemoteAddr(), err)
		return
	}
	defer sess.Close()
	fmt.Printf("bhserve: session up with AS%s (%s)\n", sess.Peer().ASN, conn.RemoteAddr())
	peerIP := peerAddr(conn)
	for {
		u, err := sess.ReadUpdate()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				fmt.Printf("bhserve: session with AS%s ended: %v\n", sess.Peer().ASN, err)
			}
			return
		}
		u.PeerAS = sess.Peer().ASN
		u.PeerIP = peerIP
		live.Publish(&stream.Elem{Collector: "bhserve", Platform: collector.PlatformRIS, Update: u})
	}
}

func peerAddr(conn net.Conn) netip.Addr {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}

func printEvent(ev *core.Event) {
	var provs []string
	for pr := range ev.Providers {
		provs = append(provs, pr.String())
	}
	sort.Strings(provs)
	fmt.Printf("EVENT %s  %s - %s (%s)  providers=%v users=%d\n",
		ev.Prefix,
		ev.Start.Format(time.RFC3339), ev.End.Format(time.RFC3339),
		ev.Duration().Truncate(time.Second), provs, len(ev.Users))
}
