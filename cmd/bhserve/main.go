// Command bhserve runs a live blackholing detector: it listens for BGP
// sessions on a TCP port (like a RIPE RIS collector), feeds every
// received UPDATE through the inference engine, and prints blackholing
// events as they close — the §10 near-real-time workflow as a daemon.
//
// With -store, every closed event also lands in the persistent event
// store (crash-safe segmented log, background-compacted), and -http
// serves the store's longitudinal query API (JSON + NDJSON) while the
// detector runs. -ingest pre-loads a replay window into the store at
// startup, so the query API has history before the first live session:
//
//	bhserve -listen 127.0.0.1:1790 -scale 0.15 -seed 42 \
//	        -store ./bhstore -http 127.0.0.1:8080 -ingest 800:810
//
// Point any RFC 4271 speaker at it (examples/livefeed shows a client);
// updates tagged with dictionary communities start events, withdrawals
// and untagged re-announcements close them. SIGINT flushes open events
// and exits. Query the store while it runs:
//
//	curl 'http://127.0.0.1:8080/events?prefix=10.1.2.3&mode=lpm'
//	bhquery -server http://127.0.0.1:8080 -origin 65001
//
// -rules-file loads alert rules (one per line, "name=x prefix=..."
// syntax; see the README's Alerting section) into the alerting hub:
// matching events stream to SSE clients on GET /watch, to webhooks
// registered with -webhook (repeatable), and the rule set is editable
// at runtime via /rules. Verdict-conditioned rules are enriched at
// detection time through the world's annotator:
//
//	bhserve ... -http 127.0.0.1:8080 \
//	        -rules-file rules.txt -webhook http://127.0.0.1:9000/hook
//	bhquery -server http://127.0.0.1:8080 -watch
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bgpblackholing"
)

// config carries the parsed command line.
type config struct {
	listen     string
	scale      float64
	seed       int64
	asn        uint32
	storeDir   string
	httpAddr   string
	ingest     string
	policy     string
	syncPolicy string
	coldOpen   bool
	mmap       bool
	authToken  string
	rateLimit  float64
	liveBuffer int
	subQueue   int
	rulesFile  string
	webhooks   multiFlag
	workload   string
	logFormat  string
	logLevel   string
	pprof      bool
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var cfg config
	var asn uint
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:1790", "listen address for BGP sessions")
	flag.Float64Var(&cfg.scale, "scale", 0.15, "world scale (dictionary + topology)")
	flag.Int64Var(&cfg.seed, "seed", 42, "deterministic seed")
	flag.UintVar(&asn, "asn", 64900, "local AS number")
	flag.StringVar(&cfg.storeDir, "store", "", "persist events to this store directory")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve the store's query API on this address (requires -store)")
	flag.StringVar(&cfg.ingest, "ingest", "", "replay days FROM:TO into the store at startup (requires -store)")
	flag.StringVar(&cfg.policy, "compact-policy", "merge-all", "store compaction policy: merge-all, or tiered[,partition=30d,ratio=4,min-run=4]")
	flag.StringVar(&cfg.syncPolicy, "sync-policy", "close", "store durability: close, always, or group[,every=N,interval=D]")
	flag.BoolVar(&cfg.coldOpen, "cold-open", true, "open the store lazily from segment sidecars, decoding cold segments on first touching query")
	flag.BoolVar(&cfg.mmap, "mmap", true, "memory-map sealed segments instead of reading them into the heap (unix only; ignored elsewhere)")
	flag.StringVar(&cfg.authToken, "auth-token", "", "require this bearer token on the query API (default open)")
	flag.Float64Var(&cfg.rateLimit, "rate-limit", 0, "per-client query API requests/second (0 = unlimited)")
	flag.IntVar(&cfg.liveBuffer, "live-buffer", 0, "bound the live feed's pending-element buffer, dropping oldest past it (0 = unbounded)")
	flag.IntVar(&cfg.subQueue, "sub-queue", 0, "bound each event subscriber's queue, dropping oldest past it (0 = unbounded)")
	flag.StringVar(&cfg.workload, "workload", "", "scenario preset for the world and -ingest replay: default or flash-crowd")
	flag.StringVar(&cfg.rulesFile, "rules-file", "", "load alert rules from this file (one per line, 'name=x prefix=...' syntax)")
	flag.Var(&cfg.webhooks, "webhook", "POST matching alerts to this URL (repeatable)")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.BoolVar(&cfg.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/ on the query API (requires -http; auth-protected when -auth-token is set)")
	flag.Parse()
	cfg.asn = uint32(asn)
	if err := setupLogger(cfg.logFormat, cfg.logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "bhserve:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		slog.Error("bhserve failed", "err", err)
		os.Exit(1)
	}
}

// setupLogger installs the process-wide slog default per -log-format
// and -log-level.
func setupLogger(format, level string) error {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("-log-level: unknown level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return fmt.Errorf("-log-format: unknown format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

func run(cfg config) error {
	if cfg.storeDir == "" && (cfg.httpAddr != "" || cfg.ingest != "") {
		return fmt.Errorf("-http and -ingest require -store")
	}
	if cfg.pprof && cfg.httpAddr == "" {
		return fmt.Errorf("-pprof requires -http")
	}
	pol, err := bgpblackholing.ParseCompactionPolicy(cfg.policy)
	if err != nil {
		return fmt.Errorf("-compact-policy: %w", err)
	}
	syncPol, err := bgpblackholing.ParseSyncPolicy(cfg.syncPolicy)
	if err != nil {
		return fmt.Errorf("-sync-policy: %w", err)
	}
	// A named preset keeps its own timeline length (flash-crowd is a
	// short dense run, not an 850-day longitudinal one).
	days := 850
	if cfg.workload != "" && cfg.workload != "default" {
		days = 0
	}
	p, err := bgpblackholing.NewPipeline(bgpblackholing.Options{
		Seed: cfg.seed, TopoScale: cfg.scale, CollectorScale: cfg.scale, EventScale: cfg.scale,
		Days: days, Workload: cfg.workload,
	})
	if err != nil {
		return err
	}

	// One Telemetry per process: the store's write-path instruments,
	// the detector / hub snapshots and the HTTP middleware all feed the
	// registry GET /metrics renders.
	tel := bgpblackholing.NewTelemetry()

	// The store outlives individual runs; sealed segments compact in
	// the background under the configured policy (tiered policies keep
	// cold partitions untouched and give DeletePrefix tombstones their
	// physical erasure pass).
	var st *bgpblackholing.Store
	if cfg.storeDir != "" {
		st, err = bgpblackholing.OpenStoreWith(cfg.storeDir, bgpblackholing.StoreOptions{
			CompactSegments: 8, Policy: pol, Sync: syncPol,
			ColdOpen: cfg.coldOpen, Mmap: cfg.mmap,
			Instruments: tel.StoreInstruments(),
		})
		if err != nil {
			return err
		}
		defer st.Close()
		tel.ObserveStore(st)
		slog.Info("store opened", "dir", cfg.storeDir, "events", st.Len(), "sync_policy", cfg.syncPolicy)
	}

	if cfg.ingest != "" {
		if err := ingestWindow(p, st, cfg.ingest); err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
	}

	// The detector exists before the HTTP server so /stats can surface
	// its live fan-out counters. Bounded subscriber queues keep a
	// stalled consumer from buffering the run's whole event stream.
	var detOpts []bgpblackholing.DetectorOption
	if cfg.subQueue > 0 {
		detOpts = append(detOpts, bgpblackholing.WithSubscriberQueueBound(cfg.subQueue, bgpblackholing.DropOldest))
	}
	det := p.NewDetector(detOpts...)
	tel.ObserveDetector(det)

	// The alerting hub exists whenever it has a surface to serve: an
	// HTTP API (/watch, /rules), an initial rule set, or webhooks.
	// Detection-time enrichment rides the world's annotator, so
	// verdict-conditioned rules fire on the live stream.
	var hub *bgpblackholing.AlertHub
	if cfg.httpAddr != "" || cfg.rulesFile != "" || len(cfg.webhooks) > 0 {
		rules, err := loadRules(cfg.rulesFile)
		if err != nil {
			return fmt.Errorf("-rules-file: %w", err)
		}
		hubCfg := bgpblackholing.AlertHubConfig{Annotator: p.Annotator()}
		if cfg.subQueue > 0 {
			hubCfg.WatchBound = cfg.subQueue
		}
		hub, err = bgpblackholing.NewAlertHub(rules, hubCfg)
		if err != nil {
			return fmt.Errorf("rules: %w", err)
		}
		defer hub.Close()
		for _, u := range cfg.webhooks {
			if err := hub.AddWebhook(u, bgpblackholing.WebhookConfig{}); err != nil {
				return fmt.Errorf("-webhook: %w", err)
			}
		}
		tel.ObserveHub(hub)
		slog.Info("alerting hub ready", "rules", len(rules), "webhooks", len(cfg.webhooks))
	}

	var srv *http.Server
	if cfg.httpAddr != "" {
		hln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return err
		}
		// The handler carries the world's annotator (ROA registry +
		// IRR/web dictionary), so /events?enrich=1 and /legitimacy can
		// answer "was this blackholing legitimate" per event. Attach it
		// to the store too, for programmatic Query.Enrich callers.
		st.SetAnnotator(p.Annotator())
		srv = &http.Server{Handler: bgpblackholing.NewStoreHandlerWith(st, p, bgpblackholing.HandlerOptions{
			AuthToken: cfg.authToken,
			RateLimit: cfg.rateLimit,
			Detector:  det,
			Hub:       hub,
			Telemetry: tel,
			Pprof:     cfg.pprof,
		})}
		go srv.Serve(hln)
		// Backstop for error paths; the normal exit drains gracefully
		// below before the deferred store close runs.
		defer srv.Close()
		slog.Info("query API listening", "addr", "http://"+hln.Addr().String(),
			"auth", cfg.authToken != "", "rate_limit", cfg.rateLimit, "pprof", cfg.pprof)
		if reg := p.RPKIRegistry(); reg != nil {
			slog.Info("legitimacy enrichment on", "roas", reg.Len(), "communities", len(p.Dict.Entries()))
		}
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	slog.Info("listening for BGP sessions", "addr", ln.Addr().String(), "asn", cfg.asn,
		"communities", len(p.Dict.Entries()))

	// The live feed: every accepted BGP session publishes its updates
	// into the source the detector drains.
	live := bgpblackholing.NewLiveSource()
	if cfg.liveBuffer > 0 {
		live.SetBufferLimit(cfg.liveBuffer)
	}
	serveRes := make(chan error, 1)
	go func() {
		// ServeBGP closes the feed on return, so Run below still drains
		// and reports; the error is re-checked after Run so a listener
		// death does not pass as a clean exit-0 shutdown.
		serveRes <- live.ServeBGP(ln, serveCfg(cfg.asn))
	}()

	// Events print the moment they close, not at shutdown; with a store
	// they persist through the sink the same moment.
	waitSink := func() error { return nil }
	if st != nil {
		waitSink = det.SinkToStore(st)
	}
	waitHub := func() {}
	if hub != nil {
		waitHub = det.SinkToHub(hub)
	}
	printed := make(chan struct{})
	sub := det.Subscribe()
	go func() {
		defer close(printed)
		for ev := range sub {
			printEvent(ev)
		}
	}()

	// SIGINT/SIGTERM: stop accepting and close the feed; Run drains
	// what is buffered, flushes open events (they stream to the
	// subscriber and the store sink) and returns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		slog.Info("shutting down")
		ln.Close()
		live.Close()
	}()

	res, err := det.Run(context.Background(), live)
	if err != nil {
		return err
	}
	<-printed
	if err := waitSink(); err != nil {
		return fmt.Errorf("store sink: %w", err)
	}
	waitHub()
	// Graceful HTTP shutdown: drain in-flight store queries before the
	// deferred store close can pull the store out from under them (the
	// old abrupt Close raced exactly that).
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
		}
		cancel()
	}
	m := res.Metrics
	slog.Info("run complete",
		"updates", m.UpdatesProcessed, "cleaned", m.UpdatesCleaned,
		"detections", m.Detections, "events", m.EventsClosed,
		"explicit_ends", m.ExplicitEnds, "implicit_ends", m.ImplicitEnds)
	if n := live.Dropped(); n > 0 {
		slog.Warn("live buffer dropped elements", "dropped", n, "bound", cfg.liveBuffer)
	}
	if m.SubscriberDrops > 0 || m.SubscriberEvictions > 0 {
		slog.Warn("slow subscribers", "dropped", m.SubscriberDrops, "evicted", m.SubscriberEvictions)
	}
	if hub != nil {
		hs := hub.Stats()
		if hs.Alerts > 0 || hs.WatcherDrops > 0 {
			slog.Info("alerting hub summary",
				"alerts", hs.Alerts, "published", hs.Published, "watcher_drops", hs.WatcherDrops)
		}
		for _, ws := range hs.Webhooks {
			slog.Info("webhook summary", "url", ws.URL, "delivered", ws.Delivered,
				"retries", ws.Retries, "dead_letters", ws.DeadLetters, "dropped", ws.Dropped)
		}
	}
	if st != nil {
		s := st.Stats()
		slog.Info("store summary", "events", s.Events, "prefixes", s.Prefixes,
			"segments", s.Segments, "bytes", s.Bytes)
	}
	// A listener that died on its own (not via the SIGINT ln.Close) is a
	// failed run. ServeBGP may still be waiting on sessions lingering
	// past SIGINT, so don't block on it for long.
	select {
	case serr := <-serveRes:
		if serr != nil {
			return fmt.Errorf("listener failed: %w", serr)
		}
	case <-time.After(time.Second):
	}
	return nil
}

// loadRules reads a rules file: one rule per line in the compact
// "name=x prefix=..." syntax, with blank lines and #-comments skipped.
// An empty path yields an empty (but editable via /rules) rule set.
func loadRules(path string) ([]bgpblackholing.AlertRule, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []bgpblackholing.AlertRule
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := bgpblackholing.ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ingestWindow replays days "FROM:TO" of the scenario into the store,
// so the query API starts with longitudinal history.
func ingestWindow(p *bgpblackholing.Pipeline, st *bgpblackholing.Store, window string) error {
	head, tail, ok := strings.Cut(window, ":")
	if !ok {
		return fmt.Errorf("bad window %q (want FROM:TO)", window)
	}
	from, err1 := strconv.Atoi(head)
	to, err2 := strconv.Atoi(tail)
	if err1 != nil || err2 != nil || to <= from {
		return fmt.Errorf("bad window %q (want FROM:TO with TO > FROM)", window)
	}
	slog.Info("ingesting replay window", "from_day", from, "to_day", to)
	det := p.NewDetector()
	wait := det.SinkToStore(st)
	res, err := det.Run(context.Background(), p.Replay(from, to))
	if err != nil {
		return err
	}
	if err := wait(); err != nil {
		return err
	}
	slog.Info("ingest complete", "events", len(res.Events))
	return nil
}

func serveCfg(asn uint32) bgpblackholing.BGPServerConfig {
	return bgpblackholing.BGPServerConfig{
		ASN:           bgpblackholing.ASN(asn),
		BGPID:         netip.MustParseAddr("10.255.0.1"),
		HoldTime:      90 * time.Second,
		CollectorName: "bhserve",
		Platform:      bgpblackholing.PlatformRIS,
		Logf: func(format string, args ...any) {
			slog.Debug(fmt.Sprintf(format, args...), "component", "bgp-listener")
		},
	}
}

func printEvent(ev *bgpblackholing.Event) {
	var provs []string
	for pr := range ev.Providers {
		provs = append(provs, pr.String())
	}
	sort.Strings(provs)
	slog.Info("event closed",
		"prefix", ev.Prefix.String(),
		"start", ev.Start.Format(time.RFC3339),
		"end", ev.End.Format(time.RFC3339),
		"duration", ev.Duration().Truncate(time.Second).String(),
		"providers", strings.Join(provs, ","),
		"users", len(ev.Users))
}
