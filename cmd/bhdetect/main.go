// Command bhdetect runs the paper's blackholing inference (§4.2) over a
// directory of MRT archives produced by bhgen (or any archives using
// the same synthetic world): it rebuilds the blackhole communities
// dictionary from the world's documentation corpus, replays the merged
// update stream through the inference engine, and emits the detected
// blackholing events as CSV or JSON.
//
// Usage:
//
//	bhdetect -in /tmp/archives -scale 0.15 -seed 42 [-format csv|json]
//
// The -scale and -seed flags must match the bhgen invocation so that
// the same world (topology + dictionary) is reconstructed; a real
// deployment would load a dictionary file instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bgpblackholing"
)

func main() {
	var (
		in     = flag.String("in", "archives", "directory of .mrt archives")
		scale  = flag.Float64("scale", 0.15, "world scale used by bhgen")
		seed   = flag.Int64("seed", 42, "seed used by bhgen")
		format = flag.String("format", "csv", "output format: csv or json")
	)
	flag.Parse()
	if err := run(*in, *scale, *seed, *format); err != nil {
		fmt.Fprintln(os.Stderr, "bhdetect:", err)
		os.Exit(1)
	}
}

// platformOf infers the collection platform from the archive name.
func platformOf(name string) bgpblackholing.Platform {
	switch {
	case strings.HasPrefix(name, "rrc"):
		return bgpblackholing.PlatformRIS
	case strings.HasPrefix(name, "route-views"):
		return bgpblackholing.PlatformRV
	case strings.HasPrefix(name, "pch"):
		return bgpblackholing.PlatformPCH
	}
	return bgpblackholing.PlatformCDN
}

func run(in string, scale float64, seed int64, format string) error {
	opts := bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale,
		EventScale: scale * 2, Days: 850,
	}
	p, err := bgpblackholing.NewPipeline(opts)
	if err != nil {
		return err
	}
	// Prefer the dictionary archived next to the MRT files (bhgen dumps
	// it); the world regeneration then only provides the topology for
	// IXP route-server and peering-LAN lookups.
	dict := p.Dict
	if f, err := os.Open(filepath.Join(in, "dictionary.json")); err == nil {
		loaded, lerr := bgpblackholing.LoadDictionary(f)
		f.Close()
		if lerr != nil {
			return fmt.Errorf("load dictionary.json: %w", lerr)
		}
		dict = loaded
		fmt.Fprintf(os.Stderr, "bhdetect: loaded dictionary.json (%d entries)\n", len(dict.Entries()))
	}

	matches, err := filepath.Glob(filepath.Join(in, "*.mrt"))
	if err != nil {
		return err
	}
	if len(matches) == 0 {
		return fmt.Errorf("no .mrt archives in %s", in)
	}
	sort.Strings(matches)

	det := bgpblackholing.NewDetector(dict, p.Topo)

	// Pass 1: table dumps seed the engine (§4.2 initialisation; events
	// found here have unknown start times).
	for _, m := range matches {
		if !strings.HasSuffix(m, ".dump.mrt") {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(m), ".dump.mrt")
		f, err := os.Open(m)
		if err != nil {
			return err
		}
		err = det.SeedFromRIBDump(f, name, platformOf(name))
		f.Close()
		if err != nil {
			return fmt.Errorf("seed %s: %w", m, err)
		}
	}

	// Pass 2: the update archives, merged in time order.
	var srcs []bgpblackholing.Source
	var toClose []*bgpblackholing.MRTSource
	defer func() {
		for _, s := range toClose {
			s.Close()
		}
	}()
	for _, m := range matches {
		if strings.HasSuffix(m, ".dump.mrt") {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(m), ".mrt")
		src, err := bgpblackholing.OpenMRTSource(m, name, platformOf(name))
		if err != nil {
			return err
		}
		toClose = append(toClose, src)
		srcs = append(srcs, src)
	}
	res, err := det.Run(context.Background(), bgpblackholing.MergeSources(srcs...),
		bgpblackholing.WithFlushAt(time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)))
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}

	switch format {
	case "json":
		return writeJSON(os.Stdout, res.Events)
	case "csv":
		return writeCSV(os.Stdout, res.Events)
	}
	return fmt.Errorf("unknown format %q", format)
}

// eventRecord is the serialised form of one event.
type eventRecord struct {
	Prefix       string   `json:"prefix"`
	Start        string   `json:"start"`
	End          string   `json:"end"`
	DurationSec  float64  `json:"duration_sec"`
	StartUnknown bool     `json:"start_unknown,omitempty"`
	Providers    []string `json:"providers"`
	Users        []string `json:"users"`
	Communities  []string `json:"communities"`
	Platforms    []string `json:"platforms"`
	Detections   int      `json:"detections"`
}

func toRecord(ev *bgpblackholing.Event) eventRecord {
	rec := eventRecord{
		Prefix:       ev.Prefix.String(),
		Start:        ev.Start.UTC().Format(time.RFC3339),
		End:          ev.End.UTC().Format(time.RFC3339),
		DurationSec:  ev.Duration().Seconds(),
		StartUnknown: ev.StartUnknown,
		Detections:   ev.Detections,
	}
	for pr := range ev.Providers {
		rec.Providers = append(rec.Providers, pr.String())
	}
	sort.Strings(rec.Providers)
	for u := range ev.Users {
		rec.Users = append(rec.Users, "AS"+u.String())
	}
	sort.Strings(rec.Users)
	for c := range ev.Communities {
		rec.Communities = append(rec.Communities, c.String())
	}
	sort.Strings(rec.Communities)
	for p := range ev.Platforms {
		rec.Platforms = append(rec.Platforms, p.String())
	}
	sort.Strings(rec.Platforms)
	return rec
}

func writeJSON(w *os.File, events []*bgpblackholing.Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(toRecord(ev)); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "bhdetect: %d events\n", len(events))
	return nil
}

func writeCSV(w *os.File, events []*bgpblackholing.Event) error {
	fmt.Fprintln(w, "prefix,start,end,duration_sec,providers,users,communities,platforms,detections")
	for _, ev := range events {
		rec := toRecord(ev)
		fmt.Fprintf(w, "%s,%s,%s,%.0f,%s,%s,%s,%s,%d\n",
			rec.Prefix, rec.Start, rec.End, rec.DurationSec,
			strings.Join(rec.Providers, ";"),
			strings.Join(rec.Users, ";"),
			strings.Join(rec.Communities, ";"),
			strings.Join(rec.Platforms, ";"),
			rec.Detections)
	}
	fmt.Fprintf(os.Stderr, "bhdetect: %d events\n", len(events))
	return nil
}
