// Command bhroute federates the query APIs of several bhserve shards
// behind one endpoint: it fans each request out to every shard,
// merges the answers in global event order, and reports partial
// results honestly when a shard is down (HTTP 200 + X-Shards-Failed
// rather than an error). Writes stay on the shard servers; bhroute is
// a stateless read tier that can be restarted or scaled at will.
//
// Shards come from a static list, either repeated -shard flags or a
// -shards file (one shard per line):
//
//	# name = target [replica-target ...]
//	edge-a = http://127.0.0.1:8081 http://127.0.0.1:9081
//	edge-b = http://127.0.0.1:8082
//	cold   = /var/bh/replicas/cold
//
// An http:// or https:// target is a bhserve/bhroute query API; extra
// targets for the same shard are replicas, raced with hedged retries
// (-hedge) after -timeout-guarded attempts. Any other target is a
// local store directory opened read-only — the shape produced by
// `bhquery -replicate-to` or any rsync'd store dir.
//
//	bhroute -http 127.0.0.1:8090 \
//	        -shard edge-a=http://127.0.0.1:8081 \
//	        -shard edge-b=http://127.0.0.1:8082 \
//	        -shard edge-c=http://127.0.0.1:8083
//	bhquery -server http://127.0.0.1:8090 -origin 65001
//
// Routes: /events (JSON + NDJSON), /legitimacy, /figure4 (incl. the
// shape=sets mergeable form, so routers can front other routers),
// /stats (aggregate + per-shard block), /healthz (per-shard checks),
// /metrics. See OPERATIONS.md for the runbook.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bgpblackholing"
)

type config struct {
	httpAddr   string
	shardsFile string
	shards     multiFlag
	authToken  string
	shardToken string
	timeout    time.Duration
	hedge      time.Duration
	rateLimit  float64
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.httpAddr, "http", "127.0.0.1:8090", "serve the federated query API on this address")
	flag.StringVar(&cfg.shardsFile, "shards", "", "shards file: one 'name = target [replica...]' per line")
	flag.Var(&cfg.shards, "shard", "one shard, 'name=target[,replica...]' (repeatable); http(s) targets are shard query APIs, anything else a read-only store directory")
	flag.StringVar(&cfg.authToken, "auth-token", "", "require this bearer token on the router's API (default open)")
	flag.StringVar(&cfg.shardToken, "shard-token", "", "bearer token bhroute presents to the shard APIs")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-shard request timeout")
	flag.DurationVar(&cfg.hedge, "hedge", 0, "race a shard's replicas after this delay (0 = sequential failover only)")
	flag.Float64Var(&cfg.rateLimit, "rate-limit", 0, "per-client requests/second (0 = unlimited)")
	flag.Parse()
	if err := run(cfg); err != nil {
		slog.Error("bhroute failed", "err", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	shards, err := loadShards(cfg)
	if err != nil {
		return err
	}
	if len(shards) == 0 {
		return fmt.Errorf("no shards configured; pass -shard name=url or -shards file")
	}
	backends := make([]bgpblackholing.Backend, 0, len(shards))
	for _, sh := range shards {
		b, err := openShard(sh, cfg)
		if err != nil {
			return fmt.Errorf("shard %s: %w", sh.name, err)
		}
		backends = append(backends, b)
		slog.Info("shard configured", "name", sh.name, "targets", len(sh.targets), "remote", isRemote(sh.targets[0]))
	}
	fed := bgpblackholing.NewFederatedStore(backends...)
	defer fed.Close()

	tel := bgpblackholing.NewTelemetry()
	handler := bgpblackholing.NewRouterHandler(fed, bgpblackholing.RouterOptions{
		AuthToken: cfg.authToken,
		RateLimit: cfg.rateLimit,
		Telemetry: tel,
	})
	ln, err := net.Listen("tcp", cfg.httpAddr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	slog.Info("federated query API listening", "addr", "http://"+ln.Addr().String(),
		"shards", len(backends), "auth", cfg.authToken != "",
		"timeout", cfg.timeout, "hedge", cfg.hedge)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-sig:
		slog.Info("shutting down")
		return srv.Close()
	}
}

// shardSpec is one parsed shard line: a name and its target list
// (primary first, replicas after).
type shardSpec struct {
	name    string
	targets []string
}

func isRemote(target string) bool {
	return strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://")
}

// openShard builds the Backend for one shard: remote targets get a
// hedging RemoteBackend, a local target a read-only store.
func openShard(sh shardSpec, cfg config) (bgpblackholing.Backend, error) {
	if isRemote(sh.targets[0]) {
		for _, t := range sh.targets {
			if !isRemote(t) {
				return nil, fmt.Errorf("mixed remote and local targets")
			}
		}
		return bgpblackholing.NewRemoteBackend(sh.targets, bgpblackholing.RemoteOptions{
			Name:       sh.name,
			AuthToken:  cfg.shardToken,
			Timeout:    cfg.timeout,
			HedgeDelay: cfg.hedge,
		})
	}
	if len(sh.targets) > 1 {
		return nil, fmt.Errorf("local store shards take a single directory")
	}
	st, err := bgpblackholing.OpenStoreReadOnly(sh.targets[0])
	if err != nil {
		return nil, err
	}
	return bgpblackholing.NewStoreBackend(st, nil).WithName(sh.name), nil
}

// loadShards merges the -shards file and -shard flags, in that order.
func loadShards(cfg config) ([]shardSpec, error) {
	var out []shardSpec
	seen := map[string]bool{}
	add := func(spec, origin string) error {
		sh, err := parseShard(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", origin, err)
		}
		if seen[sh.name] {
			return fmt.Errorf("%s: duplicate shard name %q", origin, sh.name)
		}
		seen[sh.name] = true
		out = append(out, sh)
		return nil
	}
	if cfg.shardsFile != "" {
		data, err := os.ReadFile(cfg.shardsFile)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := add(line, fmt.Sprintf("%s:%d", cfg.shardsFile, i+1)); err != nil {
				return nil, err
			}
		}
	}
	for _, spec := range cfg.shards {
		if err := add(spec, "-shard"); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseShard parses "name = target [target...]" (file form) or
// "name=target[,target...]" (flag form).
func parseShard(spec string) (shardSpec, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return shardSpec{}, fmt.Errorf("bad shard %q (want name=target)", spec)
	}
	name = strings.TrimSpace(name)
	var targets []string
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field != "" {
			targets = append(targets, field)
		}
	}
	if name == "" || len(targets) == 0 {
		return shardSpec{}, fmt.Errorf("bad shard %q (want name=target)", spec)
	}
	return shardSpec{name: name, targets: targets}, nil
}
