// Command bhquery answers longitudinal blackholing queries from a
// persistent event store — either by opening a store directory
// read-only, or by talking to a running bhserve's HTTP API. No BGP
// data is replayed: answers come from the store's indexes.
//
//	bhquery -store ./bhstore                          # all events, table
//	bhquery -store ./bhstore -prefix 10.1.2.3 -mode lpm
//	bhquery -store ./bhstore -prefix 10.1.0.0/16 -mode covered -format csv
//	bhquery -store ./bhstore -origin 65001 -min-duration 1h
//	bhquery -store ./bhstore -community 3356:9999 -from 2015-03-01T00:00:00Z
//	bhquery -store ./bhstore -stats
//	bhquery -store ./bhstore -figure4 -every 30
//	bhquery -store ./bhstore -figure8 -group-timeout 5m
//	bhquery -server http://127.0.0.1:8080 -provider AS3356 -format ndjson
//
// A comma-separated -server list federates the servers client-side:
// every server is queried concurrently and the answers merge in global
// event order, exactly as a bhroute router would serve them —
//
//	bhquery -server http://shard-a:8080,http://shard-b:8080,http://shard-c:8080 -origin 65001
//
// With -enrich every returned event carries its legitimacy view — RPKI
// validity per inferred origin, documentation status per matched
// community, and a combined verdict (legitimate | questionable |
// illegitimate). Direct -store mode rebuilds the deployment's registry
// and dictionary deterministically from -scale/-seed (match the values
// the store was ingested with); -server mode asks the server, which
// annotates from its own world:
//
//	bhquery -store ./bhstore -enrich -scale 0.15 -seed 42 -prefix 10.1.2.3 -mode lpm
//	bhquery -server http://127.0.0.1:8080 -enrich -origin 65001
//
// Admin verbs (they open the store read-write, so stop any writer
// first — stores are single-writer):
//
//	bhquery -store ./bhstore -delete-prefix 10.2.0.0/16              # GDPR-style erasure
//	bhquery -store ./bhstore -delete-prefix 10.2.0.0/16 -delete-up-to 2016-01-01T00:00:00Z
//	bhquery -store ./bhstore -compact tiered,partition=30d,ratio=4,min-run=4
//	bhquery -store ./bhstore -replicate-to /var/bh/replicas/a        # ship segments to a read replica
//
// A deleted prefix disappears from queries immediately; its bytes
// leave the disk at the next compaction of its partition (run -compact
// to force one).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"net/url"
	"os"
	"strings"
	"time"

	"bgpblackholing"
)

func main() {
	var (
		storeDir = flag.String("store", "", "open this store directory (read-only)")
		server   = flag.String("server", "", "query a running bhserve/bhroute at this base URL instead; a comma-separated list federates the servers client-side, merging answers in global event order")

		from      = flag.String("from", "", "events overlapping at/after this RFC 3339 time")
		to        = flag.String("to", "", "events overlapping at/before this RFC 3339 time")
		prefix    = flag.String("prefix", "", "IP prefix or address to match")
		mode      = flag.String("mode", "exact", "prefix match mode: exact, lpm, covered, covering")
		origin    = flag.Uint("origin", 0, "blackholing user (origin) ASN")
		provider  = flag.String("provider", "", "provider (AS3356 or ixp:4)")
		community = flag.String("community", "", "dictionary community (high:low)")
		minDur    = flag.Duration("min-duration", 0, "minimum event duration")
		maxDur    = flag.Duration("max-duration", 0, "maximum event duration")
		limit     = flag.Int("limit", 0, "cap returned events (0 = all)")

		format  = flag.String("format", "table", "output: table, json, ndjson, csv")
		stats   = flag.Bool("stats", false, "print store statistics instead of events")
		figure4 = flag.Bool("figure4", false, "print the daily longitudinal series (Figure 4)")
		every   = flag.Int("every", 30, "sample the figure4 series every N days")
		figure8 = flag.Bool("figure8", false, "print the duration distribution summary (Figure 8)")
		groupTO = flag.Duration("group-timeout", bgpblackholing.DefaultGroupTimeout, "event-grouping timeout for -figure8 (must be positive)")

		enrichQ = flag.Bool("enrich", false, "annotate events with RPKI validity, community documentation and a legitimacy verdict")
		scale   = flag.Float64("scale", 0.15, "world scale for -enrich in direct -store mode (must match ingestion)")
		seed    = flag.Int64("seed", 42, "world seed for -enrich in direct -store mode (must match ingestion)")

		deletePrefix = flag.String("delete-prefix", "", "admin: erase this prefix's history (opens the store read-write)")
		deleteUpTo   = flag.String("delete-up-to", "", "admin: bound -delete-prefix to events ending at/before this RFC 3339 time")
		compact      = flag.String("compact", "", "admin: run a compaction pass (merge-all, or tiered[,partition=30d,ratio=4,min-run=4])")
		replicateTo  = flag.String("replicate-to", "", "admin: one-shot sync the -store directory into this replica directory (sealed segments + sidecars; re-run to catch up)")

		watch     = flag.Bool("watch", false, "stream live alerts from the server's /watch SSE endpoint (requires -server)")
		metrics   = flag.Bool("metrics", false, "scrape the server's /metrics Prometheus exposition to stdout (requires -server)")
		authToken = flag.String("auth-token", "", "bearer token for -server requests")
	)
	var watchRules multiFlag
	flag.Var(&watchRules, "rule", "filter -watch to this rule (repeatable; default all rules)")
	flag.Parse()
	if err := run(&config{
		storeDir: *storeDir, server: *server,
		from: *from, to: *to, prefix: *prefix, mode: *mode,
		origin: uint32(*origin), provider: *provider, community: *community,
		minDur: *minDur, maxDur: *maxDur, limit: *limit,
		format: *format, stats: *stats, figure4: *figure4, every: *every,
		figure8: *figure8, groupTO: *groupTO,
		enrich: *enrichQ, scale: *scale, seed: *seed,
		deletePrefix: *deletePrefix, deleteUpTo: *deleteUpTo, compact: *compact,
		replicateTo: *replicateTo,
		watch:       *watch, watchRules: watchRules, metrics: *metrics, authToken: *authToken,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bhquery:", err)
		os.Exit(1)
	}
}

type config struct {
	storeDir, server       string
	from, to, prefix, mode string
	origin                 uint32
	provider, community    string
	minDur, maxDur         time.Duration
	limit                  int
	format                 string
	stats, figure4         bool
	every                  int
	figure8                bool
	groupTO                time.Duration
	enrich                 bool
	scale                  float64
	seed                   int64

	deletePrefix, deleteUpTo, compact string
	replicateTo                       string

	watch      bool
	watchRules multiFlag
	metrics    bool
	authToken  string
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(c *config) error {
	if (c.storeDir == "") == (c.server == "") {
		return fmt.Errorf("exactly one of -store or -server is required")
	}
	if c.deleteUpTo != "" && c.deletePrefix == "" {
		return fmt.Errorf("-delete-up-to requires -delete-prefix")
	}
	// Duration sanity up front: negative filter bounds are caller
	// errors, and a non-positive grouping timeout would silently merge
	// nothing (or everything) in core.Group.
	if c.minDur < 0 {
		return fmt.Errorf("-min-duration: negative duration %v", c.minDur)
	}
	if c.maxDur < 0 {
		return fmt.Errorf("-max-duration: negative duration %v", c.maxDur)
	}
	if c.figure8 && c.groupTO <= 0 {
		return fmt.Errorf("-group-timeout: grouping timeout must be positive, got %v", c.groupTO)
	}
	if c.deletePrefix != "" || c.compact != "" || c.replicateTo != "" {
		if c.server != "" {
			return fmt.Errorf("admin verbs need direct store access; use -store, not -server")
		}
		return runAdmin(c)
	}
	if c.watch {
		if c.server == "" {
			return fmt.Errorf("-watch needs -server")
		}
		return runWatch(c)
	}
	if c.metrics {
		if c.server == "" {
			return fmt.Errorf("-metrics needs -server")
		}
		return pipeGET(c, strings.TrimRight(c.server, "/")+"/metrics")
	}
	if c.server != "" {
		if servers := splitServers(c.server); len(servers) > 1 {
			return runFederated(c, servers)
		}
		return runServer(c)
	}
	return runDirect(c)
}

// splitServers splits the comma-separated -server list.
func splitServers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, strings.TrimSuffix(part, "/"))
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Admin verbs: tombstone a prefix's history, force a compaction pass.

func runAdmin(c *config) error {
	if c.deletePrefix != "" || c.compact != "" {
		if err := runWriteAdmin(c); err != nil {
			return err
		}
	}
	// Replication runs last, so a same-invocation compaction's output is
	// what ships. It never opens the store: a replica pass is plain file
	// sync over the CRC-framed segments, safe against a live writer.
	if c.replicateTo != "" {
		rep, err := bgpblackholing.ReplicateStore(c.storeDir, c.replicateTo)
		if err != nil {
			return fmt.Errorf("-replicate-to: %w", err)
		}
		fmt.Printf("bhquery: replicated %s -> %s: %d files copied (%d bytes), %d unchanged, %d retired\n",
			c.storeDir, c.replicateTo, len(rep.Copied), rep.Bytes, rep.Skipped, len(rep.Deleted))
	}
	return nil
}

// runWriteAdmin handles the verbs that open the store read-write.
func runWriteAdmin(c *config) error {
	st, err := bgpblackholing.OpenStore(c.storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	if c.deletePrefix != "" {
		p, err := parsePrefixArg(c.deletePrefix)
		if err != nil {
			return fmt.Errorf("-delete-prefix: %v", err)
		}
		var upTo time.Time
		if c.deleteUpTo != "" {
			if upTo, err = time.Parse(time.RFC3339, c.deleteUpTo); err != nil {
				return fmt.Errorf("-delete-up-to: %v", err)
			}
		}
		n, err := st.DeletePrefix(p, upTo)
		if err != nil {
			return err
		}
		if err := st.Sync(); err != nil {
			return err
		}
		bound := "its whole history"
		if !upTo.IsZero() {
			bound = "events ending at/before " + upTo.UTC().Format(time.RFC3339)
		}
		fmt.Printf("bhquery: erased %d events under %s (%s); bytes leave the disk at the partition's next compaction\n", n, p, bound)
	}

	if c.compact != "" {
		pol, err := bgpblackholing.ParseCompactionPolicy(c.compact)
		if err != nil {
			return err
		}
		stats, err := st.Compact(pol)
		if err != nil {
			return err
		}
		fmt.Printf("bhquery: compacted %d -> %d segments across %d partitions: %d duplicates dropped, %d dead records erased, merged %v, skipped %v\n",
			stats.SegmentsBefore, stats.SegmentsAfter, stats.Partitions,
			stats.Dropped, stats.Erased, stats.Merged, stats.Skipped)
	}
	return nil
}

// parsePrefixArg accepts a prefix or a bare address (its host prefix).
func parsePrefixArg(s string) (netip.Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		a, aerr := netip.ParseAddr(s)
		if aerr != nil {
			return netip.Prefix{}, err
		}
		p = netip.PrefixFrom(a, a.BitLen())
	}
	return p, nil
}

// ---------------------------------------------------------------------
// Direct mode: open the store read-only.

func runDirect(c *config) error {
	st, err := bgpblackholing.OpenStoreReadOnly(c.storeDir)
	if err != nil {
		return err
	}
	defer st.Close()

	if c.stats {
		return printJSON(os.Stdout, st.Stats())
	}
	if c.figure4 {
		s := st.Stats()
		if s.Events == 0 {
			fmt.Println("(empty store)")
			return nil
		}
		start := s.MinStart.UTC().Truncate(24 * time.Hour)
		days := int(s.MaxEnd.Sub(start).Hours()/24) + 1
		series := st.Figure4(start, days)
		fmt.Print(bgpblackholing.FormatFigure4(series, max(1, c.every)))
		return nil
	}
	if c.figure8 {
		ungrouped, grouped := st.Figure8(c.groupTO)
		fmt.Printf("figure8: %d events group into %d periods at timeout %v\n",
			len(ungrouped), len(grouped), c.groupTO)
		return nil
	}

	// -enrich needs the world's registry and dictionary; rebuild them
	// deterministically the way bhserve does at startup.
	if c.enrich {
		p, err := bgpblackholing.NewPipeline(bgpblackholing.Options{
			Seed: c.seed, TopoScale: c.scale, CollectorScale: c.scale, EventScale: c.scale, Days: 850,
		})
		if err != nil {
			return fmt.Errorf("-enrich: building the world: %w", err)
		}
		st.SetAnnotator(p.Annotator())
	}

	q, err := buildQuery(c)
	if err != nil {
		return err
	}
	res := st.Query(q)
	records := make([]*bgpblackholing.EventRecord, len(res.Events))
	for i, ev := range res.Events {
		var r bgpblackholing.EventRecord
		if res.Annotations != nil {
			r = bgpblackholing.NewEventRecordEnriched(ev, res.Annotations[i])
		} else {
			r = bgpblackholing.NewEventRecord(ev)
		}
		records[i] = &r
	}
	fmt.Fprintf(os.Stderr, "bhquery: %d matches (%d returned), %d candidates scanned, %s\n",
		res.Total, len(records), res.Scanned, res.Elapsed)
	return render(os.Stdout, c.format, c.enrich, records)
}

func buildQuery(c *config) (bgpblackholing.Query, error) {
	var q bgpblackholing.Query
	var err error
	if c.from != "" {
		if q.From, err = time.Parse(time.RFC3339, c.from); err != nil {
			return q, fmt.Errorf("-from: %v", err)
		}
	}
	if c.to != "" {
		if q.To, err = time.Parse(time.RFC3339, c.to); err != nil {
			return q, fmt.Errorf("-to: %v", err)
		}
	}
	if c.prefix != "" {
		p, err := parsePrefixArg(c.prefix)
		if err != nil {
			return q, fmt.Errorf("-prefix: %v", err)
		}
		q.Prefix = p
	}
	if q.Mode, err = bgpblackholing.ParsePrefixMode(c.mode); err != nil {
		return q, err
	}
	q.OriginASN = bgpblackholing.ASN(c.origin)
	if c.provider != "" {
		pr, err := bgpblackholing.ParseProviderRef(c.provider)
		if err != nil {
			return q, err
		}
		q.Provider = &pr
	}
	if c.community != "" {
		if q.Community, err = bgpblackholing.ParseCommunity(c.community); err != nil {
			return q, err
		}
	}
	q.MinDuration, q.MaxDuration, q.Limit = c.minDur, c.maxDur, c.limit
	q.Enrich = c.enrich
	return q, nil
}

// ---------------------------------------------------------------------
// Server mode: talk to bhserve's HTTP API.

func runServer(c *config) error {
	base := strings.TrimSuffix(c.server, "/")
	if c.stats {
		return pipeGET(c, base+"/stats")
	}
	if c.figure4 {
		return pipeGET(c, fmt.Sprintf("%s/figure4?every=%d", base, max(1, c.every)))
	}
	if c.figure8 {
		return pipeGET(c, fmt.Sprintf("%s/figure8?timeout=%s", base, url.QueryEscape(c.groupTO.String())))
	}

	params := url.Values{}
	set := func(k, v string) {
		if v != "" {
			params.Set(k, v)
		}
	}
	set("from", c.from)
	set("to", c.to)
	set("prefix", c.prefix)
	if c.prefix != "" {
		set("mode", c.mode)
	}
	if c.origin != 0 {
		set("origin", fmt.Sprint(c.origin))
	}
	set("provider", c.provider)
	set("community", c.community)
	if c.minDur > 0 {
		set("min_duration", c.minDur.String())
	}
	if c.maxDur > 0 {
		set("max_duration", c.maxDur.String())
	}
	if c.limit > 0 {
		set("limit", fmt.Sprint(c.limit))
	}
	if c.enrich {
		set("enrich", "1")
	}
	if c.format == "ndjson" {
		set("format", "ndjson")
		return pipeGET(c, base+"/events?"+params.Encode())
	}

	resp, err := serverGET(c, base+"/events?"+params.Encode(), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var payload struct {
		Total     int                           `json:"total"`
		Returned  int                           `json:"returned"`
		Scanned   int                           `json:"scanned"`
		ElapsedUS int64                         `json:"elapsed_us"`
		Events    []*bgpblackholing.EventRecord `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bhquery: %d matches (%d returned), %d candidates scanned, %dµs server-side\n",
		payload.Total, payload.Returned, payload.Scanned, payload.ElapsedUS)
	return render(os.Stdout, c.format, c.enrich, payload.Events)
}

// ---------------------------------------------------------------------
// Federated mode: several servers behind -server, merged client-side.

// runFederated answers from a comma-separated server list: one
// RemoteBackend per base URL, federated through the same merge core
// bhroute serves — per-server answers interleave in global event
// order, totals sum, and a down server degrades the answer (with a
// warning) instead of failing it.
func runFederated(c *config, servers []string) error {
	ctx := context.Background()
	backends := make([]bgpblackholing.Backend, 0, len(servers))
	for _, base := range servers {
		b, err := bgpblackholing.NewRemoteBackend([]string{base}, bgpblackholing.RemoteOptions{
			AuthToken: c.authToken,
		})
		if err != nil {
			return err
		}
		backends = append(backends, b)
	}
	fed := bgpblackholing.NewFederatedStore(backends...)
	defer fed.Close()

	if c.stats {
		stats, err := fed.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(os.Stdout, stats)
	}
	if c.figure4 {
		stats, err := fed.Stats(ctx)
		if err != nil {
			return err
		}
		if stats.Events == 0 {
			fmt.Println("(no events)")
			return nil
		}
		start := stats.MinStart.UTC().Truncate(24 * time.Hour)
		days := int(stats.MaxEnd.Sub(start).Hours()/24) + 1
		res, err := fed.Figure4(ctx, start, days)
		if err != nil {
			return err
		}
		warnShardsFailed(res.ShardsFailed)
		fmt.Print(bgpblackholing.FormatFigure4(res.Series, max(1, c.every)))
		return nil
	}
	if c.figure8 {
		return fmt.Errorf("-figure8 needs a single -server; durations cannot merge from counted answers")
	}

	q, err := buildQuery(c)
	if err != nil {
		return err
	}
	if c.format == "ndjson" {
		stream, err := fed.RecordLines(ctx, q)
		if err != nil {
			return err
		}
		defer stream.Close()
		warnShardsFailed(stream.ShardsFailed)
		w := bufio.NewWriter(os.Stdout)
		for {
			rl, err := stream.Next()
			if err != nil {
				break
			}
			w.Write(rl.Line)
			w.WriteByte('\n')
		}
		return w.Flush()
	}
	rs, err := fed.Records(ctx, q)
	if err != nil {
		return err
	}
	warnShardsFailed(rs.ShardsFailed)
	fmt.Fprintf(os.Stderr, "bhquery: %d matches (%d returned), %d candidates scanned across %d servers, %s\n",
		rs.Total, len(rs.Records), rs.Scanned, len(servers), rs.Elapsed)
	return render(os.Stdout, c.format, c.enrich, rs.Records)
}

func warnShardsFailed(failed int) {
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bhquery: warning: %d server(s) failed to answer; results are partial\n", failed)
	}
}

// serverGET issues a GET with the configured bearer token and any
// extra headers; non-2xx responses become errors with the server's
// message.
func serverGET(c *config, u string, headers map[string]string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if c.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.authToken)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// pipeGET streams a response body straight through.
func pipeGET(c *config, u string) error {
	resp, err := serverGET(c, u, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// ---------------------------------------------------------------------
// Rendering.

func render(w io.Writer, format string, enriched bool, records []*bgpblackholing.EventRecord) error {
	switch format {
	case "json":
		return printJSON(w, records)
	case "ndjson":
		enc := json.NewEncoder(w)
		for _, r := range records {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		return nil
	case "csv":
		header := "prefix,start,end,duration_seconds,providers,users,communities,platforms,detections"
		if enriched {
			header += ",rpki,legitimacy"
		}
		fmt.Fprintln(w, header)
		for _, r := range records {
			var users []string
			for _, u := range r.Users {
				users = append(users, fmt.Sprint(u))
			}
			fmt.Fprintf(w, "%s,%s,%s,%.0f,%s,%s,%s,%s,%d",
				r.Prefix, r.Start.Format(time.RFC3339), r.End.Format(time.RFC3339),
				r.DurationSeconds,
				strings.Join(r.Providers, ";"), strings.Join(users, ";"),
				strings.Join(r.Communities, ";"), strings.Join(r.Platforms, ";"),
				r.Detections)
			if enriched {
				fmt.Fprintf(w, ",%s,%s", rpkiColumn(r), r.Legitimacy)
			}
			fmt.Fprintln(w)
		}
		return nil
	case "table":
		if enriched {
			fmt.Fprintf(w, "%-20s %-20s %-12s %-28s %-6s %-10s %-14s %s\n",
				"PREFIX", "START", "DURATION", "PROVIDERS", "USERS", "RPKI", "LEGITIMACY", "PLATFORMS")
		} else {
			fmt.Fprintf(w, "%-20s %-20s %-12s %-28s %-6s %s\n",
				"PREFIX", "START", "DURATION", "PROVIDERS", "USERS", "PLATFORMS")
		}
		for _, r := range records {
			dur := (time.Duration(r.DurationSeconds) * time.Second).String()
			if r.StartUnknown {
				dur = ">" + dur
			}
			provs := strings.Join(r.Providers, ",")
			if len(provs) > 27 {
				provs = provs[:24] + "..."
			}
			if enriched {
				fmt.Fprintf(w, "%-20s %-20s %-12s %-28s %-6d %-10s %-14s %s\n",
					r.Prefix, r.Start.Format("2006-01-02T15:04:05Z"), dur,
					provs, len(r.Users), rpkiColumn(r), r.Legitimacy,
					strings.Join(r.Platforms, ","))
			} else {
				fmt.Fprintf(w, "%-20s %-20s %-12s %-28s %-6d %s\n",
					r.Prefix, r.Start.Format("2006-01-02T15:04:05Z"), dur,
					provs, len(r.Users), strings.Join(r.Platforms, ","))
			}
		}
		return nil
	}
	return fmt.Errorf("unknown format %q (want table, json, ndjson or csv)", format)
}

// rpkiColumn renders a record's folded RPKI state, "-" when the record
// carries no RPKI section.
func rpkiColumn(r *bgpblackholing.EventRecord) string {
	if len(r.RPKI) == 0 {
		return "-"
	}
	return bgpblackholing.SummarizeRPKI(r.RPKI)
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
