package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bgpblackholing"
)

// runWatch is the -watch client: it subscribes to the server's /watch
// SSE stream and prints alerts as they arrive (table by default,
// -format ndjson for the raw records). On a dropped connection it
// reconnects with the last seen alert id in Last-Event-ID, so nothing
// within the server's replay ring is missed. Ctrl-C exits.
func runWatch(c *config) error {
	switch c.format {
	case "table", "ndjson":
	default:
		return fmt.Errorf("-watch supports -format table or ndjson, not %q", c.format)
	}
	base := strings.TrimSuffix(c.server, "/")
	params := url.Values{}
	for _, r := range c.watchRules {
		params.Add("rule", r)
	}
	u := base + "/watch"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var lastID uint64
	printedHeader := false
	backoff := time.Second
	for {
		err := watchOnce(c, u, &lastID, c.format, &printedHeader, stop)
		if err == nil {
			return nil // interrupted
		}
		// Auth and bad-request failures won't heal on retry.
		if strings.Contains(err.Error(), "401") || strings.Contains(err.Error(), "404 ") ||
			strings.Contains(err.Error(), "400 ") {
			return err
		}
		fmt.Fprintf(os.Stderr, "bhquery: watch: %v; reconnecting in %v (last id %d)\n", err, backoff, lastID)
		select {
		case <-stop:
			return nil
		case <-time.After(backoff):
		}
		backoff = min(backoff*2, 30*time.Second)
	}
}

// watchOnce runs one SSE connection until it drops (error) or the user
// interrupts (nil).
func watchOnce(c *config, u string, lastID *uint64, format string, printedHeader *bool, stop <-chan os.Signal) error {
	headers := map[string]string{"Accept": "text/event-stream"}
	if *lastID > 0 {
		headers["Last-Event-ID"] = strconv.FormatUint(*lastID, 10)
	}
	resp, err := serverGET(c, u, headers)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	// Tear the connection down on interrupt so the blocking read below
	// returns.
	done := make(chan struct{})
	defer close(done)
	interrupted := false
	go func() {
		select {
		case <-stop:
			interrupted = true
			resp.Body.Close()
		case <-done:
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var id uint64
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				if err := printAlert(format, printedHeader, data.String()); err == nil && id > 0 {
					*lastID = id
				}
			}
			id, data = 0, strings.Builder{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id:"):
			id, _ = strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(line[5:]))
		}
	}
	if interrupted {
		return nil
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return err
	}
	return fmt.Errorf("stream closed")
}

// printAlert renders one alert record.
func printAlert(format string, printedHeader *bool, data string) error {
	if format == "ndjson" {
		fmt.Println(data)
		return nil
	}
	var rec bgpblackholing.AlertRecord
	if err := json.Unmarshal([]byte(data), &rec); err != nil {
		fmt.Fprintf(os.Stderr, "bhquery: watch: bad alert payload: %v\n", err)
		return err
	}
	if !*printedHeader {
		fmt.Printf("%-6s %-16s %-20s %-20s %-12s %-28s %-6s %s\n",
			"ID", "RULE", "PREFIX", "START", "DURATION", "PROVIDERS", "USERS", "LEGITIMACY")
		*printedHeader = true
	}
	ev := rec.Event
	dur := (time.Duration(ev.DurationSeconds) * time.Second).String()
	provs := strings.Join(ev.Providers, ",")
	if len(provs) > 27 {
		provs = provs[:24] + "..."
	}
	legit := ev.Legitimacy
	if legit == "" {
		legit = "-"
	}
	fmt.Printf("%-6d %-16s %-20s %-20s %-12s %-28s %-6d %s\n",
		rec.ID, rec.Rule, ev.Prefix, ev.Start.Format("2006-01-02T15:04:05Z"), dur,
		provs, len(ev.Users), legit)
	return nil
}
