// Command bhgen generates a synthetic Internet and archives a window of
// its BGP blackholing activity as MRT files (RFC 6396), one archive per
// route collector — the same artefacts RIPE RIS, Route Views and PCH
// publish. The archives can then be analysed with bhdetect, exactly as
// the paper's pipeline consumes public collector archives.
//
// Usage:
//
//	bhgen -out /tmp/archives -scale 0.15 -from 800 -to 805 [-seed 42]
//
// The output directory receives one <collector>.mrt file per collector
// that observed anything, plus a world.txt summary. Identical flags
// produce byte-identical archives.
package main

import (
	"flag"
	"fmt"
	"os"

	"bgpblackholing"
)

func main() {
	var (
		out   = flag.String("out", "archives", "output directory")
		scale = flag.Float64("scale", 0.15, "world scale (1.0 = paper scale)")
		seed  = flag.Int64("seed", 42, "deterministic seed")
		from  = flag.Int("from", 800, "first timeline day (0 = 2014-12-01)")
		to    = flag.Int("to", 805, "one past the last timeline day")
	)
	flag.Parse()
	if err := run(*out, *scale, *seed, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "bhgen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed int64, from, to int) error {
	opts := bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale,
		EventScale: scale * 2, Days: 850,
	}
	p, err := bgpblackholing.NewPipeline(opts)
	if err != nil {
		return err
	}
	sum, err := p.WriteMRTArchives(out, from, to)
	if err != nil {
		return err
	}
	fmt.Printf("bhgen: wrote %d archives (%d updates) to %s\n", sum.Collectors, sum.Updates, out)
	return nil
}
