// Command bhgen generates a synthetic Internet and archives a window of
// its BGP blackholing activity as MRT files (RFC 6396), one archive per
// route collector — the same artefacts RIPE RIS, Route Views and PCH
// publish. The archives can then be analysed with bhdetect, exactly as
// the paper's pipeline consumes public collector archives.
//
// Usage:
//
//	bhgen -out /tmp/archives -scale 0.15 -from 800 -to 805 [-seed 42]
//
// The output directory receives one <collector>.mrt file per collector
// that observed anything, plus a world.txt summary. Identical flags
// produce byte-identical archives.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bgpblackholing"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

func main() {
	var (
		out   = flag.String("out", "archives", "output directory")
		scale = flag.Float64("scale", 0.15, "world scale (1.0 = paper scale)")
		seed  = flag.Int64("seed", 42, "deterministic seed")
		from  = flag.Int("from", 800, "first timeline day (0 = 2014-12-01)")
		to    = flag.Int("to", 805, "one past the last timeline day")
	)
	flag.Parse()
	if err := run(*out, *scale, *seed, *from, *to); err != nil {
		fmt.Fprintln(os.Stderr, "bhgen:", err)
		os.Exit(1)
	}
}

func run(out string, scale float64, seed int64, from, to int) error {
	if to <= from {
		return fmt.Errorf("empty window [%d,%d)", from, to)
	}
	opts := bgpblackholing.Options{
		Seed: seed, TopoScale: scale, CollectorScale: scale,
		EventScale: scale * 2, Days: 850,
	}
	p, err := bgpblackholing.NewPipeline(opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	colByName := map[string]*collector.Collector{}
	for _, c := range p.Deploy.Collectors {
		colByName[c.Name] = c
	}

	// Table dumps: blackholings that started before the window and are
	// still active at its start seed the archives as TABLE_DUMP_V2
	// snapshots (§4.2 initialisation).
	windowStart := workload.TimelineStart.Add(time.Duration(from) * 24 * time.Hour)
	dumpObs := map[string][]collector.Observation{}
	for day := from - 45; day < from; day++ {
		if day < 0 {
			continue
		}
		for _, in := range p.Scenario.IntentsForDay(day) {
			if !in.Prefix.IsValid() || len(in.Pattern) != 1 {
				continue
			}
			if !in.Start.Add(in.Pattern[0].On).After(windowStart) {
				continue // ended before the window
			}
			ann := collector.Announcement{
				Time:            in.Start,
				User:            in.User,
				Prefix:          in.Prefix,
				Communities:     in.Communities(p.Topo),
				NoExport:        in.NoExport,
				TargetProviders: in.Providers,
				TargetIXPs:      in.IXPs,
				Bundled:         in.Bundled,
			}
			for _, o := range p.Deploy.Propagate(ann).Observations {
				dumpObs[o.Collector.Name] = append(dumpObs[o.Collector.Name], o)
			}
		}
	}
	var dumpNames []string
	for name := range dumpObs {
		dumpNames = append(dumpNames, name)
	}
	sort.Strings(dumpNames)
	for _, name := range dumpNames {
		f, err := os.Create(filepath.Join(out, name+".dump.mrt"))
		if err != nil {
			return err
		}
		if err := collector.WriteTableDump(f, colByName[name], dumpObs[name], windowStart); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Collect observations per collector across the window.
	perCollector := map[string][]collector.Observation{}
	total := 0
	for day := from; day < to; day++ {
		intents := p.Scenario.IntentsForDay(day)
		obs, _ := workload.Materialize(p.Deploy, p.Topo, intents, seed)
		for _, o := range obs {
			perCollector[o.Collector.Name] = append(perCollector[o.Collector.Name], o)
			total++
		}
	}

	var names []string
	for name := range perCollector {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		obs := perCollector[name]
		col := colByName[name]
		// Time-order within the archive.
		s := stream.FromObservations(obs)
		f, err := os.Create(filepath.Join(out, name+".mrt"))
		if err != nil {
			return err
		}
		w := mrt.NewWriter(f)
		for {
			el, err := s.Next()
			if err != nil {
				break
			}
			if err := w.WriteUpdate(el.Update, col.IP, col.ASN); err != nil {
				f.Close()
				return fmt.Errorf("write %s: %w", name, err)
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Dictionary dump: bhdetect (and humans) can load this instead of
	// re-deriving the corpus.
	df, err := os.Create(filepath.Join(out, "dictionary.json"))
	if err != nil {
		return err
	}
	if err := p.Dict.Save(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}

	// World summary for humans.
	sum, err := os.Create(filepath.Join(out, "world.txt"))
	if err != nil {
		return err
	}
	defer sum.Close()
	fmt.Fprintf(sum, "seed=%d scale=%.3f window=[%d,%d)\n", seed, scale, from, to)
	fmt.Fprintf(sum, "ASes: %d  IXPs: %d  blackholing providers: %d  blackholing IXPs: %d\n",
		len(p.Topo.Order), len(p.Topo.IXPs),
		len(p.Topo.BlackholingProviders()), len(p.Topo.BlackholingIXPs()))
	fmt.Fprintf(sum, "collectors: %d  archived updates: %d\n", len(names), total)
	fmt.Printf("bhgen: wrote %d archives (%d updates) to %s\n", len(names), total, out)
	return nil
}
