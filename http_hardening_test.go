package bgpblackholing

// HTTP hardening tests: bearer-token auth, the per-client token-bucket
// rate limit, cancellation-aware streaming drains, and the /stats
// detector section.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPAuthToken(t *testing.T) {
	st := storeFixture(t)
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		AuthToken: "sekrit",
	}))
	defer srv.Close()

	get := func(path, auth string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for _, tc := range []struct {
		name, auth string
		want       int
	}{
		{"no header", "", http.StatusUnauthorized},
		{"wrong scheme", "Basic sekrit", http.StatusUnauthorized},
		{"wrong token", "Bearer wrong", http.StatusUnauthorized},
		{"prefix of token", "Bearer sekri", http.StatusUnauthorized},
		{"good token", "Bearer sekrit", http.StatusOK},
	} {
		resp := get("/stats", tc.auth)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: /stats = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusUnauthorized &&
			!strings.HasPrefix(resp.Header.Get("WWW-Authenticate"), "Bearer") {
			t.Errorf("%s: 401 without a WWW-Authenticate challenge", tc.name)
		}
	}

	// Liveness probes must keep working without credentials.
	if resp := get("/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("unauthenticated /healthz = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPRateLimit(t *testing.T) {
	st := storeFixture(t)
	// A tiny bucket: 1 req/s steady state, burst of 3.
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		RateLimit: 1, RateBurst: 3,
	}))
	defer srv.Close()

	codes := make([]int, 0, 6)
	for range 6 {
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	// The burst passes; everything after is throttled (the six requests
	// take far less than the 1s needed to accrue another token).
	for i, code := range codes {
		want := http.StatusOK
		if i >= 3 {
			want = http.StatusTooManyRequests
		}
		if code != want {
			t.Fatalf("request %d = %d, want %d (codes %v)", i, code, want, codes)
		}
	}

	// /healthz is exempt even for a throttled client.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("throttled client's /healthz = %d, want 200", resp.StatusCode)
	}
}

func TestHTTPRateLimitRefill(t *testing.T) {
	l := &rateLimiter{rate: 2, burst: 2, clients: map[string]*tokenBucket{}}
	now := time.Unix(1425211200, 0)
	for i := range 2 {
		if !l.allow("10.0.0.1", now) {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if l.allow("10.0.0.1", now) {
		t.Fatal("request beyond the burst allowed")
	}
	// An unrelated client has its own bucket.
	if !l.allow("10.0.0.2", now) {
		t.Fatal("fresh client denied by another client's bucket")
	}
	// Half a second at 2/s accrues one token.
	if !l.allow("10.0.0.1", now.Add(500*time.Millisecond)) {
		t.Fatal("refilled token denied")
	}
	if l.allow("10.0.0.1", now.Add(500*time.Millisecond)) {
		t.Fatal("second request on a single refilled token allowed")
	}
}

// TestHTTPCanceledStreamingRequest proves the NDJSON and legitimacy
// drains watch the request context: a client that is already gone
// produces no records instead of a full store scan.
func TestHTTPCanceledStreamingRequest(t *testing.T) {
	st := storeFixture(t)
	p := smallPipeline(t)
	handler := NewStoreHandlerWith(st, p, HandlerOptions{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, path := range []string{"/events?format=ndjson", "/legitimacy"} {
		req := httptest.NewRequest("GET", path, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		body := strings.TrimSpace(rec.Body.String())
		if body != "" {
			t.Errorf("%s with a canceled request produced output: %q", path, body)
		}
	}

	// Sanity: the same requests with a live context do produce records.
	req := httptest.NewRequest("GET", "/events?format=ndjson", nil)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n"); len(lines) != 3 {
		t.Errorf("live NDJSON request returned %d lines, want 3", len(lines))
	}
}

func TestHTTPStatsDetectorSection(t *testing.T) {
	st := storeFixture(t)
	p := smallPipeline(t)
	det := p.NewDetector(WithSubscriberQueueBound(2, DropOldest))
	det.Subscribe()
	defer det.closeSubs()

	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{Detector: det}))
	defer srv.Close()

	var stats struct {
		StoreStats // embedded: the flat store fields must survive
		Detector   struct {
			SubscriberDrops     uint64            `json:"subscriber_drops"`
			SubscriberEvictions uint64            `json:"subscriber_evictions"`
			Subscribers         []SubscriberStats `json:"subscribers"`
		} `json:"detector"`
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Events != 3 {
		t.Errorf("embedded store stats report %d events, want 3", stats.Events)
	}
	if n := len(stats.Detector.Subscribers); n != 1 {
		t.Fatalf("detector section lists %d subscribers, want 1", n)
	}
	if b := stats.Detector.Subscribers[0].Bound; b != 2 {
		t.Errorf("subscriber bound = %d, want 2", b)
	}
}
