package bgpblackholing

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/stream"
)

// FederatedStore fans the Backend query surface out over N shard
// backends and merges the answers:
//
//	events        per-shard streams k-way merged on RecordKey (the
//	              global closing order), limits pushed down per shard
//	              and re-applied after the merge
//	figure4       per-shard entity sets unioned, then counted
//	legitimacy    per-shard histograms summed
//	stats         store shapes summed + a version-tagged per-shard block
//	healthz       per-shard probes
//
// Because each shard's stream is already ordered by RecordKey (Seq is
// the closing/append order) and the shards partition the events, the
// merged stream is byte-identical to what one store holding every
// event would serve. Per-shard Limit pushdown is sound for the same
// reason: each shard's stream is an order-subsequence of the global
// stream, so the global top-k is contained in the union of per-shard
// top-ks.
//
// A failed shard degrades the answer instead of failing it: the merge
// continues over the surviving shards and the failure is counted
// (RecordSet.ShardsFailed, the X-Shards-Failed response header, the
// stats shards block). Only when every shard fails does a call error.
//
// FederatedStore itself implements Backend, so a federation can be
// served by NewRouterHandler, queried by bhquery, or even mounted as a
// shard of a larger federation.
type FederatedStore struct {
	backends []Backend
	counters []shardCounters
}

// shardCounters are the router's lifetime per-shard counters, exposed
// via /stats and Telemetry.ObserveFederation.
type shardCounters struct {
	requests atomic.Uint64
	failures atomic.Uint64
	hedges   atomic.Uint64
}

// NewFederatedStore federates backends. The shard order is
// significant only for presentation (stats rows, health checks).
func NewFederatedStore(backends ...Backend) *FederatedStore {
	return &FederatedStore{
		backends: backends,
		counters: make([]shardCounters, len(backends)),
	}
}

// Name implements Backend.
func (f *FederatedStore) Name() string { return "federation" }

// Backends returns the shard backends in presentation order.
func (f *FederatedStore) Backends() []Backend { return f.backends }

// Close closes every shard backend, joining errors.
func (f *FederatedStore) Close() error {
	var errs []error
	for _, b := range f.backends {
		if err := b.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// fanOut runs fn against every shard concurrently and returns the
// per-shard errors (nil for successes), counting requests and
// failures.
func (f *FederatedStore) fanOut(fn func(i int, b Backend) error) []error {
	errs := make([]error, len(f.backends))
	call := func(i int, b Backend) {
		f.counters[i].requests.Add(1)
		if err := fn(i, b); err != nil {
			f.counters[i].failures.Add(1)
			errs[i] = err
		}
	}
	// Backends that answer from local memory in microseconds run
	// inline on the calling goroutine: a spawn + scheduler wakeup
	// costs more than the query itself. Remote backends (network
	// latency) fan out first, so they overlap the inline work.
	var wg sync.WaitGroup
	for i, b := range f.backends {
		if inProcess(b) {
			continue
		}
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			call(i, b)
		}(i, b)
	}
	for i, b := range f.backends {
		if inProcess(b) {
			call(i, b)
		}
	}
	wg.Wait()
	return errs
}

// inProcess reports whether a backend answers from this process's
// memory (no network hop), making concurrent fan-out a pessimization.
func inProcess(b Backend) bool {
	_, ok := b.(*StoreBackend)
	return ok
}

// failureCount folds a fan-out's outcome: how many shards failed, and
// the first error (for the all-failed case).
func failureCount(errs []error) (failed int, first error) {
	for _, err := range errs {
		if err != nil {
			failed++
			if first == nil {
				first = err
			}
		}
	}
	return failed, first
}

// Records implements Backend: fan out with the limit pushed down,
// sort each shard's answer on RecordKey, k-way merge, cut to the
// limit, and sum the accounting (shards partition the events, so
// totals add).
func (f *FederatedStore) Records(ctx context.Context, q Query) (*RecordSet, error) {
	began := time.Now()
	sets := make([]*RecordSet, len(f.backends))
	errs := f.fanOut(func(i int, b Backend) error {
		rs, err := b.Records(ctx, q)
		sets[i] = rs
		return err
	})
	failed, first := failureCount(errs)
	if failed == len(f.backends) {
		return nil, fmt.Errorf("all %d shards failed: %w", failed, first)
	}

	out := &RecordSet{ShardsFailed: failed}
	var cursors []recordsCursor
	for _, rs := range sets {
		if rs == nil {
			continue
		}
		out.Total += rs.Total
		out.Scanned += rs.Scanned
		// Shard answers are in append order, which is RecordKey order
		// for a seq-stamped lineage — verified with one linear pass
		// that also precomputes the merge keys. Only a legacy
		// (seq-less) shard pays the sort.
		keys := make([]RecordKey, len(rs.Records))
		sorted := true
		for i := range rs.Records {
			keys[i] = KeyOf(rs.Records[i])
			if i > 0 && keys[i].Less(keys[i-1]) {
				sorted = false
			}
		}
		if !sorted {
			sort.Stable(&keyedRecords{keys: keys, records: rs.Records})
		}
		if len(rs.Records) > 0 {
			cursors = append(cursors, recordsCursor{records: rs.Records, keys: keys})
		}
	}
	h := stream.NewHeap(func(a, b recordsCursor) bool {
		return a.keys[a.pos].Less(b.keys[b.pos])
	})
	for _, c := range cursors {
		h.Push(c)
	}
	for h.Len() > 0 {
		c := h.Pop()
		out.Records = append(out.Records, c.records[c.pos])
		if q.Limit > 0 && len(out.Records) >= q.Limit {
			break
		}
		if c.pos++; c.pos < len(c.records) {
			h.Push(c)
		}
	}
	out.Elapsed = time.Since(began)
	return out, nil
}

type recordsCursor struct {
	records []*EventRecord
	keys    []RecordKey
	pos     int
}

// keyedRecords sorts a shard's records and their precomputed keys in
// lockstep (legacy seq-less shards only).
type keyedRecords struct {
	keys    []RecordKey
	records []*EventRecord
}

func (k *keyedRecords) Len() int           { return len(k.keys) }
func (k *keyedRecords) Less(a, b int) bool { return k.keys[a].Less(k.keys[b]) }
func (k *keyedRecords) Swap(a, b int) {
	k.keys[a], k.keys[b] = k.keys[b], k.keys[a]
	k.records[a], k.records[b] = k.records[b], k.records[a]
}

// lineCursor is one shard's live NDJSON stream position in the merge.
type lineCursor struct {
	idx  int // shard index, for failure accounting
	src  *RecordStream
	head RecordLine
}

// RecordLines implements Backend: open every shard stream eagerly
// (so ShardsFailed is known before the first body byte), then k-way
// merge on RecordKey, passing each shard's serialized bytes through
// verbatim. A shard that dies mid-stream ends its contribution; the
// merge continues over the rest.
func (f *FederatedStore) RecordLines(ctx context.Context, q Query) (*RecordStream, error) {
	streams := make([]*RecordStream, len(f.backends))
	errs := f.fanOut(func(i int, b Backend) error {
		s, err := b.RecordLines(ctx, q)
		streams[i] = s
		return err
	})
	failed, first := failureCount(errs)
	if failed == len(f.backends) {
		return nil, fmt.Errorf("all %d shards failed: %w", failed, first)
	}
	closeAll := func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
	}

	// Prime every stream: the merge needs each shard's head to pick a
	// global minimum, and a shard that cannot produce its first record
	// is a failure the response headers can still report.
	h := stream.NewHeap(func(a, b lineCursor) bool {
		if a.head.Key == b.head.Key {
			return a.idx < b.idx
		}
		return a.head.Key.Less(b.head.Key)
	})
	for i, s := range streams {
		if s == nil {
			continue
		}
		rl, err := s.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				failed++
				f.counters[i].failures.Add(1)
			}
			s.Close()
			streams[i] = nil
			continue
		}
		h.Push(lineCursor{idx: i, src: s, head: rl})
	}

	remaining := math.MaxInt
	if q.Limit > 0 {
		// Pushed down per shard by queryParams/QuerySeq; re-applied
		// here because the union of per-shard top-ks overshoots.
		remaining = q.Limit
	}
	return &RecordStream{
		ShardsFailed: failed,
		next: func() (RecordLine, error) {
			if h.Len() == 0 || remaining <= 0 {
				return RecordLine{}, io.EOF
			}
			c := h.Pop()
			out := c.head
			rl, err := c.src.Next()
			if err != nil {
				// EOF ends the shard cleanly; anything else kills its
				// remaining contribution (headers are already sent, so
				// the failure shows in counters, not this response).
				if !errors.Is(err, io.EOF) {
					f.counters[c.idx].failures.Add(1)
				}
				c.src.Close()
			} else {
				c.head = rl
				h.Push(c)
			}
			remaining--
			return out, nil
		},
		close: closeAll,
	}, nil
}

// Figure4 implements Backend: every shard reports its per-day entity
// sets over the same window; the union is counted. Partial failures
// degrade (the counts cover the surviving shards; ShardsFailed says
// so) rather than erroring.
func (f *FederatedStore) Figure4(ctx context.Context, start time.Time, days int) (*Figure4Result, error) {
	sets, failed, err := f.figure4Union(ctx, start, days)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{Series: sets.Finalize(), ShardsFailed: failed}, nil
}

// Figure4Sets implements Backend, letting a federation itself act as
// one shard of a larger federation.
func (f *FederatedStore) Figure4Sets(ctx context.Context, start time.Time, days int) (*Figure4Sets, error) {
	merged, _, err := f.figure4Union(ctx, start, days)
	if err != nil {
		return nil, err
	}
	sets := merged.Sets()
	return &sets, nil
}

func (f *FederatedStore) figure4Union(ctx context.Context, start time.Time, days int) (*analysis.Figure4Partial, int, error) {
	shardSets := make([]*Figure4Sets, len(f.backends))
	errs := f.fanOut(func(i int, b Backend) error {
		s, err := b.Figure4Sets(ctx, start, days)
		shardSets[i] = s
		return err
	})
	failed, first := failureCount(errs)
	if failed == len(f.backends) {
		return nil, failed, fmt.Errorf("all %d shards failed: %w", failed, first)
	}
	merged := analysis.NewFigure4Partial(start, days)
	for _, s := range shardSets {
		if s == nil {
			continue
		}
		if err := merged.MergeSets(*s); err != nil {
			return nil, failed, err
		}
	}
	return merged, failed, nil
}

// LegitimacySummary implements Backend: per-shard histograms sum.
func (f *FederatedStore) LegitimacySummary(ctx context.Context, q Query) (*LegitimacySummary, error) {
	began := time.Now()
	sums := make([]*LegitimacySummary, len(f.backends))
	errs := f.fanOut(func(i int, b Backend) error {
		s, err := b.LegitimacySummary(ctx, q)
		sums[i] = s
		return err
	})
	failed, first := failureCount(errs)
	if failed == len(f.backends) {
		return nil, fmt.Errorf("all %d shards failed: %w", failed, first)
	}
	out := newLegitimacySummary()
	out.ShardsFailed = failed
	for _, s := range sums {
		if s == nil {
			continue
		}
		out.Total += s.Total
		for k, v := range s.Legitimacy {
			out.Legitimacy[k] += v
		}
		for k, v := range s.RPKI {
			out.RPKI[k] += v
		}
		for k, v := range s.CommunityDoc {
			out.CommunityDoc[k] += v
		}
		for k, v := range s.Reasons {
			out.Reasons[k] += v
		}
	}
	out.ElapsedUS = time.Since(began).Microseconds()
	return out, nil
}

// Stats implements Backend: counters sum (shards hold disjoint
// events), time bounds fold to the global span, and the Shards block
// carries the version-tagged per-shard breakdown. Note Prefixes is a
// sum of per-shard distinct counts: exact under a prefix-split plan,
// an upper bound under a time plan (the same prefix may recur on
// several shards).
func (f *FederatedStore) Stats(ctx context.Context) (*BackendStats, error) {
	stats := make([]*BackendStats, len(f.backends))
	errs := f.fanOut(func(i int, b Backend) error {
		s, err := b.Stats(ctx)
		stats[i] = s
		return err
	})
	failed, first := failureCount(errs)
	if failed == len(f.backends) {
		return nil, fmt.Errorf("all %d shards failed: %w", failed, first)
	}
	out := &BackendStats{Shards: &ShardsInfo{Version: ShardsInfoVersion, Failed: failed}}
	for i, b := range f.backends {
		row := ShardStat{
			Name:     b.Name(),
			Requests: f.counters[i].requests.Load(),
			Failures: f.counters[i].failures.Load(),
			Hedges:   f.counters[i].hedges.Load(),
		}
		if rb, ok := b.(*RemoteBackend); ok {
			row.URL = rb.URL()
		}
		s := stats[i]
		if s == nil {
			row.Status = "down"
			if errs[i] != nil {
				row.Err = errs[i].Error()
			}
			out.Shards.Shards = append(out.Shards.Shards, row)
			continue
		}
		row.Status = "ok"
		row.Events = s.Events
		agg := &out.StoreStats
		agg.Events += s.Events
		agg.Prefixes += s.Prefixes
		agg.Segments += s.Segments
		agg.Bytes += s.Bytes
		agg.Tombstones += s.Tombstones
		agg.PendingErasure += s.PendingErasure
		agg.RecoveredTails += s.RecoveredTails
		agg.Unsynced += s.Unsynced
		agg.SegmentsCold += s.SegmentsCold
		agg.SegmentsHydrated += s.SegmentsHydrated
		agg.OpenDecodedEvents += s.OpenDecodedEvents
		agg.HydratedEvents += s.HydratedEvents
		agg.MappedBytes += s.MappedBytes
		if !s.MinStart.IsZero() && (agg.MinStart.IsZero() || s.MinStart.Before(agg.MinStart)) {
			agg.MinStart = s.MinStart
		}
		if s.MaxEnd.After(agg.MaxEnd) {
			agg.MaxEnd = s.MaxEnd
		}
		out.Shards.Shards = append(out.Shards.Shards, row)
	}
	return out, nil
}

// ShardHealths probes every shard concurrently (the /healthz fan-out).
func (f *FederatedStore) ShardHealths(ctx context.Context) []*ShardHealth {
	healths := make([]*ShardHealth, len(f.backends))
	f.fanOut(func(i int, b Backend) error {
		healths[i] = b.Healthz(ctx)
		if healths[i].Status == "down" {
			return errors.New(healths[i].Err)
		}
		return nil
	})
	return healths
}

// Healthz implements Backend: the federation is ok only when every
// shard is.
func (f *FederatedStore) Healthz(ctx context.Context) *ShardHealth {
	out := &ShardHealth{Name: f.Name(), Status: "ok"}
	checks := map[string]string{}
	for _, h := range f.ShardHealths(ctx) {
		out.Events += h.Events
		if h.Status != "ok" {
			msg := h.Status
			if h.Err != "" {
				msg += ": " + h.Err
			}
			checks["shard:"+h.Name] = msg
		}
		for k, v := range h.Checks {
			checks["shard:"+h.Name+":"+k] = v
		}
	}
	if len(checks) > 0 {
		out.Status = "degraded"
		out.Checks = checks
	}
	return out
}

// ---------------------------------------------------------------------
// Shard plans: deciding which shard an event belongs to at write time.

// ShardPlan assigns each closed event to one of N shards. The two
// provided plans — TimeShardPlan and PrefixShardPlan — partition the
// event space, which is what makes federated totals sums and the
// merged stream a permutation-free interleave.
type ShardPlan interface {
	// Shards is the shard count N.
	Shards() int
	// Shard maps an event to [0, N).
	Shard(ev *Event) int
	// String describes the plan for logs and docs.
	String() string
}

// TimeShardPlan partitions by closing time: shard = ⌊(End − Epoch) /
// Width⌋ mod N. Consecutive time windows land on consecutive shards
// round-robin, so a long capture spreads over all shards instead of
// filling them one by one.
type TimeShardPlan struct {
	// Epoch anchors window zero. The zero value (Unix epoch) is fine;
	// only the alignment matters.
	Epoch time.Time
	// Width is one window's span. Must be positive.
	Width time.Duration
	// N is the shard count. Must be positive.
	N int
}

// Shards implements ShardPlan.
func (p TimeShardPlan) Shards() int { return p.N }

// Shard implements ShardPlan.
func (p TimeShardPlan) Shard(ev *Event) int {
	w := int64(p.Width)
	if w <= 0 || p.N <= 0 {
		return 0
	}
	d := ev.End.Sub(p.Epoch)
	win := int64(d) / w
	if int64(d)%w < 0 {
		win-- // floor toward −inf for pre-epoch events
	}
	s := int(win % int64(p.N))
	if s < 0 {
		s += p.N
	}
	return s
}

// String implements ShardPlan.
func (p TimeShardPlan) String() string {
	return fmt.Sprintf("time(width=%s, n=%d)", p.Width, p.N)
}

// PrefixShardPlan partitions by prefix address: the top Bit bits of
// the event prefix's (family-native) address, mod N. This is a split
// of the patricia trie at depth Bit — all events under one depth-Bit
// subtree land on the same shard, so covered/covering queries for a
// prefix at or below that depth touch one shard. Both families hash
// independently (v4 from the 32-bit address, v6 from the top 64 bits).
type PrefixShardPlan struct {
	// Bit is the trie depth of the split (1..32). Must be positive.
	Bit int
	// N is the shard count. Must be positive.
	N int
}

// Shards implements ShardPlan.
func (p PrefixShardPlan) Shards() int { return p.N }

// Shard implements ShardPlan.
func (p PrefixShardPlan) Shard(ev *Event) int {
	if p.N <= 0 {
		return 0
	}
	bit := p.Bit
	if bit <= 0 {
		bit = 8
	}
	if bit > 32 {
		bit = 32
	}
	addr := ev.Prefix.Addr()
	var top uint64
	if addr.Is4() {
		a4 := addr.As4()
		v := uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3])
		top = v >> (32 - uint(bit))
	} else {
		a16 := addr.As16()
		var v uint64
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(a16[i])
		}
		top = v >> (64 - uint(bit))
	}
	return int(top % uint64(p.N))
}

// String implements ShardPlan.
func (p PrefixShardPlan) String() string {
	return fmt.Sprintf("prefix(bit=%d, n=%d)", p.Bit, p.N)
}

// ParseShardPlan parses the CLI plan syntax:
//
//	time:<width>:<n>    e.g. time:168h:3  (weekly windows over 3 shards)
//	prefix:<bit>:<n>    e.g. prefix:8:4   (top octet over 4 shards)
func ParseShardPlan(s string) (ShardPlan, error) {
	parts := splitN(s, ':', 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad shard plan %q (want time:<width>:<n> or prefix:<bit>:<n>)", s)
	}
	n, err := parsePositiveInt(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad shard count in %q: %v", s, err)
	}
	switch parts[0] {
	case "time":
		w, err := time.ParseDuration(parts[1])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad window width in %q", s)
		}
		return TimeShardPlan{Width: w, N: n}, nil
	case "prefix":
		bit, err := parsePositiveInt(parts[1])
		if err != nil || bit > 32 {
			return nil, fmt.Errorf("bad split bit in %q (want 1..32)", s)
		}
		return PrefixShardPlan{Bit: bit, N: n}, nil
	}
	return nil, fmt.Errorf("bad shard plan kind %q (want time or prefix)", parts[0])
}

func splitN(s string, sep byte, n int) []string {
	var out []string
	for len(out) < n-1 {
		i := indexByte(s, sep)
		if i < 0 {
			break
		}
		out = append(out, s[:i])
		s = s[i+1:]
	}
	return append(out, s)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func parsePositiveInt(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("bad number %q", s)
		}
		n = n*10 + int(s[i]-'0')
		if n > 1<<20 {
			return 0, fmt.Errorf("number %q too large", s)
		}
	}
	if n <= 0 {
		return 0, fmt.Errorf("number must be positive")
	}
	return n, nil
}
