package bgpblackholing

// Benchmarks for the day-sharded parallel replay pipeline. Run with
//
//	go test -run '^$' -bench BenchmarkRunWindowParallel -benchmem
//
// and compare the workers=1 row (the serial baseline) against the
// multi-worker rows; scripts/bench.sh records the results in
// BENCH_<date>.json.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

var parallelBench struct {
	once sync.Once
	p    *Pipeline
}

func parallelBenchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	parallelBench.once.Do(func() {
		p, err := NewPipeline(SmallOptions())
		if err != nil {
			panic(err)
		}
		// Warm the lazy caches (customer cones, dense AS index) so every
		// worker-count variant benchmarks the same steady state.
		p.Opts.Workers = 1
		p.RunWindow(windowFrom, windowFrom+2)
		parallelBench.p = p
	})
	return parallelBench.p
}

// BenchmarkRunWindowParallel replays the Aug 2016 – Mar 2017 analysis
// window at SmallOptions across worker counts. Identical Events are
// produced at every worker count; only the wall clock changes.
func BenchmarkRunWindowParallel(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := parallelBenchPipeline(b)
			p.Opts.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := p.RunWindow(windowFrom, windowTo)
				if len(res.Events) == 0 {
					b.Fatal("no events")
				}
			}
		})
	}
}

// BenchmarkRunStreaming replays the same window through the streaming
// API — Detector.Run over a ReplaySource, with the per-event close hook
// live and one subscriber draining the event channel. Comparing against
// the matching BenchmarkRunWindowParallel row bounds the cost of the
// event-hook indirection and the subscriber fanout (it must be noise:
// the hot path is materialization + inference, not delivery).
func BenchmarkRunStreaming(b *testing.B) {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := parallelBenchPipeline(b)
			p.Opts.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det := p.NewDetector()
				drained := make(chan int, 1)
				sub := det.Subscribe()
				go func() {
					n := 0
					for range sub {
						n++
					}
					drained <- n
				}()
				res, err := det.Run(context.Background(), p.Replay(windowFrom, windowTo))
				if err != nil {
					b.Fatal(err)
				}
				if n := <-drained; n == 0 || n != len(res.Events) {
					b.Fatalf("subscriber drained %d events, result has %d", n, len(res.Events))
				}
			}
		})
	}
}
