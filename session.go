package bgpblackholing

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"bgpblackholing/internal/bgpd"
	"bgpblackholing/internal/stream"
)

// This file is the facade over internal/bgpd: real RFC 4271 sessions
// over TCP, on both sides — a collector accepting sessions into a
// LiveSource (ServeBGP), and a router announcing into a collector
// (DialBGP). Together with Detector.Run over the LiveSource they form
// the paper's §10 near-real-time workflow end to end, over actual
// sockets.

// ErrBGPNotification is returned by session reads when the peer sent a
// NOTIFICATION message (its graceful error path).
var ErrBGPNotification = bgpd.ErrNotification

// BGPConfig describes the local side of a BGP session.
type BGPConfig struct {
	// ASN is the local AS number (4-octet capable).
	ASN ASN
	// BGPID is the local BGP identifier.
	BGPID netip.Addr
	// HoldTime is the proposed hold time (0 disables keepalive
	// supervision; the RFC minimum otherwise is 3s).
	HoldTime time.Duration
	// DialTimeout bounds DialBGP end to end: the TCP connect AND the
	// OPEN/KEEPALIVE handshake (a peer whose kernel accepts the
	// connection but whose daemon never answers the OPEN would
	// otherwise hang a dialer forever). Zero applies
	// DefaultDialTimeout; negative disables the bound.
	DialTimeout time.Duration
}

// DefaultDialTimeout bounds DialBGP (connect + handshake) when
// BGPConfig.DialTimeout is zero.
const DefaultDialTimeout = 30 * time.Second

// dialTimeout resolves the configured timeout against the default.
func (c BGPConfig) dialTimeout() time.Duration {
	switch {
	case c.DialTimeout < 0:
		return 0
	case c.DialTimeout == 0:
		return DefaultDialTimeout
	}
	return c.DialTimeout
}

// BGPSession is one established BGP session.
type BGPSession struct {
	sess *bgpd.Session
}

// EstablishBGP performs the OPEN/KEEPALIVE handshake over an existing
// connection (either side of it).
func EstablishBGP(conn net.Conn, cfg BGPConfig) (*BGPSession, error) {
	sess, err := bgpd.Establish(conn, bgpd.Config{ASN: cfg.ASN, BGPID: cfg.BGPID, HoldTime: cfg.HoldTime})
	if err != nil {
		return nil, err
	}
	return &BGPSession{sess: sess}, nil
}

// DialBGP connects to a BGP speaker and performs the handshake,
// bounded end to end by cfg.DialTimeout (DefaultDialTimeout when
// zero).
func DialBGP(addr string, cfg BGPConfig) (*BGPSession, error) {
	return DialBGPContext(context.Background(), addr, cfg)
}

// DialBGPContext is DialBGP with caller-controlled cancellation: the
// TCP connect aborts when ctx is canceled, and the tighter of ctx's
// deadline and cfg.DialTimeout bounds the whole dial including the
// OPEN handshake.
func DialBGPContext(ctx context.Context, addr string, cfg BGPConfig) (*BGPSession, error) {
	deadline := time.Time{}
	if to := cfg.dialTimeout(); to > 0 {
		deadline = time.Now().Add(to)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	dialer := net.Dialer{Deadline: deadline}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// The deadline must also cover the handshake: a peer that accepts
	// the TCP connection but never answers the OPEN is the hang the
	// timeout exists for. Established sessions manage their own read
	// deadlines from the hold time, so clear it afterwards.
	if !deadline.IsZero() {
		conn.SetDeadline(deadline)
	}
	sess, err := EstablishBGP(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return sess, nil
}

// PeerASN returns the remote AS number learned from its OPEN.
func (s *BGPSession) PeerASN() ASN { return s.sess.Peer().ASN }

// SendUpdate writes one UPDATE message.
func (s *BGPSession) SendUpdate(u *Update) error { return s.sess.SendUpdate(u) }

// ReadUpdate reads the next UPDATE, transparently answering keepalives.
// It returns io.EOF when the peer hangs up and ErrBGPNotification when
// the peer signals an error.
func (s *BGPSession) ReadUpdate() (*Update, error) { return s.sess.ReadUpdate() }

// Close ends the session with a Cease notification.
func (s *BGPSession) Close() error { return s.sess.Close() }

// BGPServerConfig configures a collector-side BGP listener.
type BGPServerConfig struct {
	// Local session identity (see BGPConfig).
	ASN      ASN
	BGPID    netip.Addr
	HoldTime time.Duration
	// CollectorName and Platform label every published element.
	CollectorName string
	Platform      Platform
	// Logf, when non-nil, receives session lifecycle messages
	// (handshakes, session ends).
	Logf func(format string, args ...any)
}

func (c *BGPServerConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// ServeBGP accepts BGP sessions on ln and publishes every received
// UPDATE — stamped with the session's peer AS and address — into the
// live source, like a RIPE RIS collector ingesting peer feeds. It
// blocks until the listener is closed, then waits for the established
// sessions to finish reading (every update already on the wire is
// published) and closes the source so the consuming Detector.Run
// drains and returns. Callers that must not wait for lingering
// sessions close the source directly, as bhserve's SIGINT path does —
// late publishes on a closed source are dropped.
func (l *LiveSource) ServeBGP(ln net.Listener, cfg BGPServerConfig) error {
	var sessions sync.WaitGroup
	defer l.Close()
	defer sessions.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sessions.Add(1)
		go func() {
			defer sessions.Done()
			l.serveBGPSession(conn, cfg)
		}()
	}
}

func (l *LiveSource) serveBGPSession(conn net.Conn, cfg BGPServerConfig) {
	sess, err := bgpd.Establish(conn, bgpd.Config{ASN: cfg.ASN, BGPID: cfg.BGPID, HoldTime: cfg.HoldTime})
	if err != nil {
		cfg.logf("handshake failed from %s: %v", conn.RemoteAddr(), err)
		return
	}
	defer sess.Close()
	cfg.logf("session up with AS%s (%s)", sess.Peer().ASN, conn.RemoteAddr())
	peerIP := peerAddr(conn)
	for {
		u, err := sess.ReadUpdate()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				cfg.logf("session with AS%s ended: %v", sess.Peer().ASN, err)
			}
			return
		}
		u.PeerAS = sess.Peer().ASN
		u.PeerIP = peerIP
		l.Publish(&stream.Elem{Collector: cfg.CollectorName, Platform: cfg.Platform, Update: u})
	}
}

func peerAddr(conn net.Conn) netip.Addr {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap.Addr()
	}
	return netip.Addr{}
}
