// ddosmonitor demonstrates the §6 workflow: monitor daily blackholing
// activity over the Dec 2014 – Mar 2017 timeline and flag the days whose
// activity spikes above the recent baseline — the spikes the paper
// correlates with headline DDoS attacks (NS1, the Turkish coup, the Rio
// Olympics, Krebs-on-Security, Liberia).
//
//	go run ./examples/ddosmonitor
package main

import (
	"context"
	"fmt"
	"log"

	"bgpblackholing"
)

func main() {
	opts := bgpblackholing.SmallOptions()
	opts.EventScale = 0.2
	p, err := bgpblackholing.NewPipeline(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the attack-heavy half of the timeline.
	from, to := 480, 720
	fmt.Printf("monitoring timeline days [%d,%d)...\n", from, to)
	res, err := p.NewDetector().Run(context.Background(), p.Replay(from, to))
	if err != nil {
		log.Fatal(err)
	}
	series := bgpblackholing.Figure4(res.Events, bgpblackholing.TimelineStart, to)

	// Spike detection: a day is anomalous when its blackholed-prefix
	// count exceeds 2x the trailing 14-day median.
	window := 14
	fmt.Println("\nday         prefixes  baseline  verdict")
	for d := from + window; d < to; d++ {
		base := trailingMedian(series, d, window)
		cur := series[d].Prefixes
		if base > 0 && float64(cur) > 2*float64(base) {
			fmt.Printf("%s  %8d  %8d  SPIKE%s\n",
				series[d].Day.Format("2006-01-02"), cur, base, annotation(d))
		}
	}

	fmt.Println("\nknown attack days in this window:")
	for _, sp := range bgpblackholing.DefaultSpikes() {
		if sp.Day >= from && sp.Day < to {
			fmt.Printf("  day %d (%s): %s\n", sp.Day,
				bgpblackholing.TimelineStart.AddDate(0, 0, sp.Day).Format("2006-01-02"), sp.Name)
		}
	}
}

func trailingMedian(series []bgpblackholing.DailyPoint, day, window int) int {
	vals := make([]int, 0, window)
	for d := day - window; d < day; d++ {
		vals = append(vals, series[d].Prefixes)
	}
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

func annotation(day int) string {
	for _, sp := range bgpblackholing.DefaultSpikes() {
		if day >= sp.Day && day < sp.Day+sp.Days {
			return "  <- " + sp.Name
		}
	}
	return ""
}
