// dictionary demonstrates §4.1: building the blackhole communities
// dictionary from IRR records and operator web pages with keyword/lemma
// extraction, then extending it with the prefix-length inference of
// Figure 2 — and scoring both against the world's ground truth.
//
//	go run ./examples/dictionary
package main

import (
	"context"
	"fmt"
	"log"

	"bgpblackholing"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	topo, dict := p.Topo, p.Dict

	nIRR, nWeb := 0, 0
	for _, d := range p.Corpus {
		if d.Source == bgpblackholing.SourceIRR {
			nIRR++
		} else {
			nWeb++
		}
	}
	fmt.Printf("corpus: %d IRR records, %d web pages\n", nIRR, nWeb)
	fmt.Printf("extracted: %d standard + %d large communities, %d provider ASes, %d IXPs\n\n",
		len(dict.Entries()), len(dict.LargeEntries()), len(dict.Providers()), len(dict.IXPs()))

	// Score against ground truth: the extractor must find every IRR/web
	// documented provider and none of the undocumented ones.
	var truthDoc, truthUndoc, foundDoc, falsePos int
	inDict := map[bgpblackholing.ASN]bool{}
	for _, asn := range dict.Providers() {
		inDict[asn] = true
	}
	for _, asn := range topo.Order {
		as := topo.AS(asn)
		if as.Blackholing == nil {
			continue
		}
		switch as.Blackholing.Doc {
		case bgpblackholing.DocIRR, bgpblackholing.DocWeb, bgpblackholing.DocPrivate:
			truthDoc++
			if inDict[asn] {
				foundDoc++
			}
		case bgpblackholing.DocNone:
			truthUndoc++
			if inDict[asn] {
				falsePos++
			}
		}
	}
	fmt.Printf("documented providers:   %d/%d recovered, %d false positives\n",
		foundDoc, truthDoc, falsePos)
	fmt.Printf("undocumented providers: %d (invisible to the text pipeline)\n\n", truthUndoc)

	// Show a few entries with their metadata.
	fmt.Println("sample entries:")
	for i, e := range dict.Entries() {
		if i >= 8 {
			break
		}
		scope := e.Scope
		if scope == "" {
			scope = "global"
		}
		fmt.Printf("  %-12s doc=%-7s maxlen=/%d scope=%-14s providers=%d ixps=%d shared=%v\n",
			e.Community, e.Doc, e.MaxPrefixLen, scope, len(e.Providers), len(e.IXPs), e.Shared)
	}

	// Extension: replay a week of updates and infer undocumented
	// communities from their prefix-length profile (Figure 2 method).
	res, err := p.NewDetector().Run(context.Background(), p.Replay(843, 850))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninference extension over one week of updates:\n")
	fmt.Printf("  %d communities profiled, %d inferred as undocumented blackhole communities\n",
		len(res.InferStats.Stats), len(res.InferStats.Inferred))
	correct := 0
	for _, e := range res.InferStats.Inferred {
		as := topo.AS(e.Providers[0])
		if as != nil && as.Blackholing != nil && as.Blackholing.HasCommunity(e.Community) {
			correct++
		}
	}
	fmt.Printf("  %d/%d inferred communities match ground truth\n", correct, len(res.InferStats.Inferred))
}
