// livefeed runs the detection pipeline over a real BGP session: a
// collector listens on localhost TCP, a victim's router connects,
// announces a blackholed /32 (RFC 7999 community + NO_EXPORT), probes
// the attack twice with the ON/OFF practice, and withdraws. The
// inference engine consumes the session through a LiveSource and
// reports the events — §10's near-real-time workflow end to end, over
// actual sockets and through the same Detector.Run call the batch
// replay uses.
//
//	go run ./examples/livefeed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"bgpblackholing"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	// The victim: an IXP member with the RFC 7999 service available.
	var victimAS bgpblackholing.ASN
	var victim netip.Prefix
	for _, x := range p.Topo.BlackholingIXPs() {
		victimAS = x.Members[0]
		b := p.Topo.AS(victimAS).Prefixes[0].Addr().As4()
		victim = netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 7, 7}), 32)
		break
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("collector listening on %s\n", ln.Addr())

	// Collector side: accept sessions and publish every update into the
	// live source.
	live := bgpblackholing.NewLiveSource()
	go func() {
		err := live.ServeBGP(ln, bgpblackholing.BGPServerConfig{
			ASN:           64900,
			BGPID:         netip.MustParseAddr("10.255.0.1"),
			HoldTime:      30 * time.Second,
			CollectorName: "live-rrc",
			Platform:      bgpblackholing.PlatformRIS,
			Logf: func(format string, args ...any) {
				fmt.Printf("collector: "+format+"\n", args...)
			},
		})
		if err != nil {
			log.Printf("collector listener failed: %v", err)
		}
	}()

	// Router side: connect and run two ON/OFF probing rounds, then hang
	// up — the listener closes, ServeBGP closes the source, Run drains.
	go func() {
		sess, err := bgpblackholing.DialBGP(ln.Addr().String(), bgpblackholing.BGPConfig{
			ASN: victimAS, BGPID: netip.MustParseAddr("10.0.0.9"), HoldTime: 30 * time.Second,
		})
		if err != nil {
			log.Fatalf("router handshake: %v", err)
		}
		defer ln.Close()
		defer sess.Close()
		for round := 0; round < 2; round++ {
			fmt.Printf("router: announcing blackhole for %s (round %d)\n", victim, round+1)
			if err := sess.SendUpdate(&bgpblackholing.Update{
				Announced:   []netip.Prefix{victim},
				Origin:      bgpblackholing.OriginIGP,
				Path:        bgpblackholing.NewPath(victimAS),
				NextHop:     netip.MustParseAddr("10.0.0.9"),
				Communities: []bgpblackholing.Community{bgpblackholing.CommunityBlackhole, bgpblackholing.CommunityNoExport},
			}); err != nil {
				log.Fatal(err)
			}
			time.Sleep(60 * time.Millisecond)
			fmt.Println("router: withdrawing (checking whether the attack stopped)")
			if err := sess.SendUpdate(&bgpblackholing.Update{
				Withdrawn: []netip.Prefix{victim},
			}); err != nil {
				log.Fatal(err)
			}
			time.Sleep(40 * time.Millisecond)
		}
	}()

	// The engine consumes the live feed through the standard Run call.
	// The victim's peer IP is in no IXP LAN here (direct session), so
	// detection rides on the §4.2 peer-ip check: stamp the peer IP into
	// the victim's IXP peering LAN, as a PCH collector at the exchange
	// would see it.
	x := p.Topo.IXPs[p.Topo.AS(victimAS).IXPs[0]]
	nUpdates := 0
	src := bgpblackholing.MapSource(live, func(el *bgpblackholing.Elem) *bgpblackholing.Elem {
		el.Update.PeerIP = x.MemberIP(victimAS)
		el.Update.PeerAS = victimAS
		nUpdates++
		return el
	})

	// Events print the moment they close — while the session is live.
	det := p.NewDetector()
	printed := make(chan struct{})
	sub := det.Subscribe()
	go func() {
		defer close(printed)
		for ev := range sub {
			var provs []string
			for pr := range ev.Providers {
				provs = append(provs, pr.String())
			}
			fmt.Printf("  EVENT %s  %v  providers=%v\n",
				ev.Prefix, ev.Duration().Truncate(time.Millisecond), provs)
		}
	}()

	res, err := det.Run(context.Background(), src,
		bgpblackholing.WithFlushAt(time.Now().UTC().Add(time.Hour)))
	if err != nil {
		log.Fatal(err)
	}
	<-printed

	fmt.Printf("\nprocessed %d live updates\n", nUpdates)
	fmt.Printf("inferred %d blackholing events\n", len(res.Events))
	periods := bgpblackholing.Group(res.Events, bgpblackholing.DefaultGroupTimeout)
	fmt.Printf("grouped into %d period(s) — the ON/OFF probing practice\n", len(periods))
}
