// livefeed runs the detection pipeline over a real BGP session: a
// collector listens on localhost TCP, a victim's router connects,
// announces a blackholed /32 (RFC 7999 community + NO_EXPORT), probes
// the attack twice with the ON/OFF practice, and withdraws. The
// inference engine consumes the session through a live stream and
// reports the events — §10's near-real-time workflow end to end, over
// actual sockets.
//
//	go run ./examples/livefeed
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/netip"
	"time"

	"bgpblackholing"
	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/bgpd"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/stream"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	// The victim: an IXP member with the RFC 7999 service available.
	var victimAS bgp.ASN
	var victim netip.Prefix
	for _, x := range p.Topo.BlackholingIXPs() {
		victimAS = x.Members[0]
		b := p.Topo.AS(victimAS).Prefixes[0].Addr().As4()
		victim = netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 7, 7}), 32)
		break
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("collector listening on %s\n", ln.Addr())

	live := stream.NewLive()

	// Collector side: accept the session and publish every update into
	// the live stream.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sess, err := bgpd.Establish(conn, bgpd.Config{
			ASN: 64900, BGPID: netip.MustParseAddr("10.255.0.1"), HoldTime: 30 * time.Second,
		})
		if err != nil {
			log.Printf("collector handshake: %v", err)
			live.Close()
			return
		}
		fmt.Printf("collector: session established with AS%s\n", sess.Peer().ASN)
		for {
			u, err := sess.ReadUpdate()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, bgpd.ErrNotification) {
					log.Printf("collector read: %v", err)
				}
				live.Close()
				return
			}
			u.PeerAS = sess.Peer().ASN
			u.PeerIP = netip.MustParseAddr("10.0.0.9")
			live.Publish(&stream.Elem{Collector: "live-rrc", Platform: collector.PlatformRIS, Update: u})
		}
	}()

	// Router side: connect and run two ON/OFF probing rounds.
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		sess, err := bgpd.Establish(conn, bgpd.Config{
			ASN: victimAS, BGPID: netip.MustParseAddr("10.0.0.9"), HoldTime: 30 * time.Second,
		})
		if err != nil {
			log.Fatalf("router handshake: %v", err)
		}
		defer sess.Close()
		for round := 0; round < 2; round++ {
			fmt.Printf("router: announcing blackhole for %s (round %d)\n", victim, round+1)
			if err := sess.SendUpdate(&bgp.Update{
				Announced:   []netip.Prefix{victim},
				Origin:      bgp.OriginIGP,
				Path:        bgp.NewPath(victimAS),
				NextHop:     netip.MustParseAddr("10.0.0.9"),
				Communities: []bgp.Community{bgp.CommunityBlackhole, bgp.CommunityNoExport},
			}); err != nil {
				log.Fatal(err)
			}
			time.Sleep(60 * time.Millisecond)
			fmt.Println("router: withdrawing (checking whether the attack stopped)")
			if err := sess.SendUpdate(&bgp.Update{
				Withdrawn: []netip.Prefix{victim},
			}); err != nil {
				log.Fatal(err)
			}
			time.Sleep(40 * time.Millisecond)
		}
	}()

	// The engine consumes the live stream. The victim's peer IP is in no
	// IXP LAN here (direct session), so detection rides on the path
	// check against the IXP's transparent route server... use the
	// simplest confirmable form: the peer IP placed inside the IXP LAN.
	engine := core.NewEngine(p.Dict, p.Topo)
	nUpdates := 0
	for {
		el, err := live.Next()
		if err != nil {
			break
		}
		// Stamp the peer IP into the victim's IXP peering LAN so the
		// §4.2 peer-ip check confirms the IXP provider, as it would on a
		// PCH collector at the exchange.
		x := p.Topo.IXPs[p.Topo.AS(victimAS).IXPs[0]]
		el.Update.PeerIP = x.MemberIP(victimAS)
		el.Update.PeerAS = victimAS
		nUpdates++
		engine.Process(el)
	}
	engine.Flush(time.Now().UTC().Add(time.Hour))

	fmt.Printf("\nprocessed %d live updates\n", nUpdates)
	events := engine.Events()
	fmt.Printf("inferred %d blackholing events:\n", len(events))
	for _, ev := range events {
		var provs []string
		for pr := range ev.Providers {
			provs = append(provs, pr.String())
		}
		fmt.Printf("  %s  %v  providers=%v\n", ev.Prefix, ev.Duration().Truncate(time.Millisecond), provs)
	}
	periods := core.Group(events, core.DefaultGroupTimeout)
	fmt.Printf("grouped into %d period(s) — the ON/OFF probing practice\n", len(periods))
}
