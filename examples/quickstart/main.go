// Quickstart: build a small synthetic Internet, replay five days of BGP
// through the simulated route collectors, and print the blackholing
// events the inference engine detects — streamed as they close, then
// summarised from the final result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"bgpblackholing"
)

func main() {
	// SmallOptions builds a laptop-sized world: ~260 ASes, ~17 IXPs,
	// ~50 blackholing providers, deterministic under seed 42.
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d ASes, %d IXPs, %d blackholing providers, %d blackholing IXPs\n",
		len(p.Topo.Order), len(p.Topo.IXPs),
		len(p.Topo.BlackholingProviders()), len(p.Topo.BlackholingIXPs()))
	fmt.Printf("dictionary: %d documented blackhole communities covering %d ASes and %d IXPs\n\n",
		len(p.Dict.Entries()), len(p.Dict.Providers()), len(p.Dict.IXPs()))

	// Replay five days near the end of the timeline (high activity).
	// Events stream to subscribers the moment they close — a monitoring
	// loop sees them long before the replay finishes.
	det := p.NewDetector()
	closing := det.Stream() // subscribe before Run so no close is missed
	streamed := make(chan int, 1)
	go func() {
		n := 0
		for range closing {
			n++
		}
		streamed <- n
	}()
	res, err := det.Run(context.Background(), p.Replay(845, 850))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed days 845-849 (%s to %s): %d blackholing events (%d streamed to the subscriber)\n\n",
		res.WindowStart.Format("2006-01-02"), res.WindowEnd.Format("2006-01-02"),
		len(res.Events), <-streamed)

	// Show the five longest events.
	events := append([]*bgpblackholing.Event(nil), res.Events...)
	sort.Slice(events, func(i, j int) bool { return events[i].Duration() > events[j].Duration() })
	fmt.Println("longest events:")
	for i, ev := range events {
		if i >= 5 {
			break
		}
		var providers []string
		for pr := range ev.Providers {
			providers = append(providers, pr.String())
		}
		sort.Strings(providers)
		fmt.Printf("  %-20s %8s  providers=%v  seen by %d peers\n",
			ev.Prefix, ev.Duration().Truncate(1e9), providers, len(ev.Peers))
	}

	// The ON/OFF probing practice: grouping with the paper's 5-minute
	// timeout collapses probing bursts into operator-level periods.
	periods := bgpblackholing.Group(res.Events, bgpblackholing.DefaultGroupTimeout)
	fmt.Printf("\n%d raw events group into %d blackholing periods (5-minute timeout)\n",
		len(res.Events), len(periods))
}
