// lookingglass demonstrates the §5.2 Cogent case: blackholing triggered
// through an out-of-band customer portal is invisible in every BGP feed,
// but a looking glass inside the provider reveals the null route — and a
// community-capable glass can enumerate everything a provider currently
// blackholes.
//
//	go run ./examples/lookingglass
package main

import (
	"fmt"
	"log"
	"net/netip"

	"bgpblackholing"
	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/lookingglass"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	glasses := lookingglass.Deploy(p.Topo)
	fmt.Printf("deployed %d looking glasses\n\n", len(glasses.Glasses()))

	// Replay one day, mirroring each propagation's drop set into the
	// glasses (their RIBs) while the collectors observe BGP.
	day := 848
	engine := core.NewEngine(p.Dict, p.Topo)
	intents := p.Scenario.IntentsForDay(day)
	obs, results := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
	for _, res := range results {
		glasses.RecordResult(res, nil)
	}
	s := stream.FromObservations(obs)
	for {
		el, err := s.Next()
		if err != nil {
			break
		}
		engine.Process(el)
	}
	bgpVisible := map[netip.Prefix]bool{}
	engine.Flush(workload.TimelineStart.AddDate(0, 0, day+2))
	for _, ev := range engine.Events() {
		bgpVisible[ev.Prefix] = true
	}

	// The portal case: a provider null-routes a prefix with no BGP
	// announcement at all.
	provider := p.Topo.BlackholingProviders()[0]
	hidden := netip.MustParsePrefix("198.41.128.4/32")
	glasses.RecordBlackhole(provider.ASN, hidden, []bgp.Community{provider.Blackholing.Communities[0]})

	fmt.Printf("BGP-visible blackholed prefixes today: %d\n", len(bgpVisible))
	fmt.Printf("portal-blackholed prefix %s visible in BGP: %v\n", hidden, bgpVisible[hidden])

	g := glasses.Glass(provider.ASN)
	entries := g.QueryPrefix(hidden)
	for _, e := range entries {
		if e.Blackholed {
			fmt.Printf("looking glass inside AS%d: %s -> next-hop %s (null route, community %s)\n",
				provider.ASN, e.Prefix, e.NextHop, e.Communities[0])
		}
	}

	// Community-capable glasses can enumerate a provider's blackholing.
	if g.Capability >= lookingglass.CapCommunity {
		list, err := g.QueryCommunity(provider.Blackholing.Communities[0])
		if err == nil {
			fmt.Printf("\nAS%d currently null-routes %d prefixes (via community query):\n",
				provider.ASN, len(list))
			for i, e := range list {
				if i >= 5 {
					fmt.Println("  ...")
					break
				}
				fmt.Printf("  %s\n", e.Prefix)
			}
		}
	}
}
