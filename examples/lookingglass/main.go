// lookingglass demonstrates the §5.2 Cogent case: blackholing triggered
// through an out-of-band customer portal is invisible in every BGP feed,
// but a looking glass inside the provider reveals the null route — and a
// community-capable glass can enumerate everything a provider currently
// blackholes.
//
//	go run ./examples/lookingglass
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"bgpblackholing"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	glasses := bgpblackholing.DeployLookingGlasses(p.Topo)
	fmt.Printf("deployed %d looking glasses\n\n", len(glasses.Glasses()))

	// Replay one day; the run returns the day's propagation results,
	// which mirror each blackholing's drop set into the glasses (their
	// RIBs) while the collectors observe BGP.
	day := 848
	res, err := p.NewDetector().Run(context.Background(), p.Replay(day, day+1),
		bgpblackholing.WithFlushAt(bgpblackholing.TimelineStart.AddDate(0, 0, day+2)))
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range res.LastDayResults {
		glasses.RecordResult(pr, nil)
	}
	bgpVisible := map[netip.Prefix]bool{}
	for _, ev := range res.Events {
		bgpVisible[ev.Prefix] = true
	}

	// The portal case: a provider null-routes a prefix with no BGP
	// announcement at all.
	provider := p.Topo.BlackholingProviders()[0]
	hidden := netip.MustParsePrefix("198.41.128.4/32")
	glasses.RecordBlackhole(provider.ASN, hidden,
		[]bgpblackholing.Community{provider.Blackholing.Communities[0]})

	fmt.Printf("BGP-visible blackholed prefixes today: %d\n", len(bgpVisible))
	fmt.Printf("portal-blackholed prefix %s visible in BGP: %v\n", hidden, bgpVisible[hidden])

	g := glasses.Glass(provider.ASN)
	entries := g.QueryPrefix(hidden)
	for _, e := range entries {
		if e.Blackholed {
			fmt.Printf("looking glass inside AS%d: %s -> next-hop %s (null route, community %s)\n",
				provider.ASN, e.Prefix, e.NextHop, e.Communities[0])
		}
	}

	// Community-capable glasses can enumerate a provider's blackholing.
	if g.Capability >= bgpblackholing.CapCommunity {
		list, err := g.QueryCommunity(provider.Blackholing.Communities[0])
		if err == nil {
			fmt.Printf("\nAS%d currently null-routes %d prefixes (via community query):\n",
				provider.ASN, len(list))
			for i, e := range list {
				if i >= 5 {
					fmt.Println("  ...")
					break
				}
				fmt.Printf("  %s\n", e.Prefix)
			}
		}
	}
}
