// lookingglass is a historical blackholing looking glass: it persists a
// replay window into the event store once, then answers the questions a
// public looking glass (or the paper's longitudinal analysis) asks —
// from the store's indexes, in microseconds, without replaying BGP data:
//
//   - point lookup: has this address ever been blackholed, when, by whom
//     (longest-prefix-match over the patricia trie), each hit annotated
//     with its legitimacy — RPKI validity of the victim prefix at the
//     inferred origins and the documentation status of the matched
//     communities (Query.Enrich through the world's annotator);
//   - aggregate sweep: every blackholed more-specific inside a /8
//     (covered-prefix query);
//   - per-origin history: all events for one blackholing user ASN.
//
// It closes with the §5.2 Cogent case: blackholing triggered through an
// out-of-band customer portal never appears in any BGP feed — so it is
// absent from the store too — but a looking glass inside the provider
// reveals the null route.
//
//	go run ./examples/lookingglass
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"sort"

	"bgpblackholing"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Ingest once: replay a week through the detector with a store
	// sink. A real deployment does this continuously (bhserve -store).
	dir := filepath.Join(os.TempDir(), "bhstore-lookingglass")
	os.RemoveAll(dir)
	defer os.RemoveAll(dir)
	st, err := bgpblackholing.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	det := p.NewDetector()
	wait := det.SinkToStore(st)
	day := 843
	res, err := det.Run(context.Background(), p.Replay(day, day+7))
	if err != nil {
		log.Fatal(err)
	}
	if err := wait(); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	if len(res.Events) == 0 {
		log.Fatalf("replay days [%d,%d) closed no events; widen the window", day, day+7)
	}
	fmt.Printf("ingested %d events from replay days [%d,%d) into %s\n\n",
		len(res.Events), day, day+7, dir)

	// Query-many: reopen read-only, as a looking-glass frontend would.
	glass, err := bgpblackholing.OpenStoreReadOnly(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer glass.Close()
	// The world's ROA registry and dictionary power per-event
	// legitimacy annotation on enriched queries.
	glass.SetAnnotator(p.Annotator())
	stats := glass.Stats()
	fmt.Printf("store: %d events, %d distinct prefixes, %d segments, span %s – %s\n\n",
		stats.Events, stats.Prefixes, stats.Segments,
		stats.MinStart.Format("2006-01-02"), stats.MaxEnd.Format("2006-01-02"))

	// 1. Point lookup: was this address blackholed? (LPM, enriched with
	// the legitimacy verdict per hit.)
	victim := res.Events[len(res.Events)/2].Prefix.Addr()
	qr := glass.Query(bgpblackholing.Query{
		Prefix: netip.PrefixFrom(victim, victim.BitLen()),
		Mode:   bgpblackholing.PrefixLPM,
		Enrich: true,
	})
	fmt.Printf("LPM lookup %s: %d events (scanned %d candidates in %s)\n",
		victim, qr.Total, qr.Scanned, qr.Elapsed)
	for i, ev := range qr.Events {
		var provs []string
		for pr := range ev.Providers {
			provs = append(provs, pr.String())
		}
		sort.Strings(provs)
		ann := qr.Annotations[i]
		fmt.Printf("  %s  %s – %s  via %v  rpki=%s legitimacy=%s\n", ev.Prefix,
			ev.Start.Format("2006-01-02 15:04"), ev.End.Format("2006-01-02 15:04"), provs,
			ann.RPKISummary(), ann.Legitimacy)
		for _, reason := range ann.Reasons {
			fmt.Printf("    ! %s\n", reason)
		}
	}

	// 2. Aggregate sweep: every blackholed more-specific inside the
	// victim's /8 (covered-prefix query over the trie).
	slash8 := netip.PrefixFrom(victim, 8)
	qr = glass.Query(bgpblackholing.Query{Prefix: slash8, Mode: bgpblackholing.PrefixCovered})
	fmt.Printf("\ncovered sweep %s: %d events on more-specifics (%s)\n",
		slash8.Masked(), qr.Total, qr.Elapsed)

	// 3. Per-origin history: the blackholing user's full record.
	var user bgpblackholing.ASN
	for u := range res.Events[len(res.Events)/2].Users {
		user = u
		break
	}
	if user != 0 {
		qr = glass.Query(bgpblackholing.Query{OriginASN: user})
		fmt.Printf("per-origin history AS%d: %d events (%s)\n", user, qr.Total, qr.Elapsed)
	}

	// The §5.2 portal case: a provider null-routes a prefix with no BGP
	// announcement at all — invisible to collectors, and therefore to
	// the store.
	glasses := bgpblackholing.DeployLookingGlasses(p.Topo)
	provider := p.Topo.BlackholingProviders()[0]
	hidden := netip.MustParsePrefix("198.41.128.4/32")
	glasses.RecordBlackhole(provider.ASN, hidden,
		[]bgpblackholing.Community{provider.Blackholing.Communities[0]})

	qr = glass.Query(bgpblackholing.Query{Prefix: hidden, Mode: bgpblackholing.PrefixExact})
	fmt.Printf("\nportal-blackholed %s in the BGP-derived store: %d events\n", hidden, qr.Total)
	g := glasses.Glass(provider.ASN)
	ann := p.Annotator()
	for _, e := range g.QueryPrefix(hidden) {
		if !e.Blackholed {
			continue
		}
		// Even an out-of-band null route gets the legitimacy treatment:
		// annotate a synthetic event carrying what the glass shows —
		// the prefix and the trigger community.
		verdict := ann.Annotate(&bgpblackholing.Event{
			Prefix:      e.Prefix,
			Communities: map[bgpblackholing.Community]bool{e.Communities[0]: true},
		})
		fmt.Printf("looking glass inside AS%d: %s -> next-hop %s (null route, community %s, legitimacy=%s)\n",
			provider.ASN, e.Prefix, e.NextHop, e.Communities[0], verdict.Legitimacy)
	}
}
