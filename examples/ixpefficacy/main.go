// ixpefficacy reproduces the §10 efficacy study on one IXP: it detects
// live blackholing events, runs the four-group RIPE-Atlas-style
// traceroute campaign against each victim (Figure 9a/9b), and samples a
// week of IPFIX traffic on the IXP fabric to split dropped from
// forwarded bytes (Figure 9c).
//
//	go run ./examples/ixpefficacy
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"bgpblackholing"
)

func main() {
	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.NewDetector().Run(context.Background(), p.Replay(843, 850))
	if err != nil {
		log.Fatal(err)
	}
	sim := &bgpblackholing.TraceSimulator{Topo: p.Topo}
	r := rand.New(rand.NewSource(7))

	// Traceroute campaign over the week's events.
	var ms []bgpblackholing.PathMeasurement
	n := 0
	for _, pr := range res.LastDayResults {
		if n >= 40 || !pr.Prefix.IsValid() || !pr.Prefix.Addr().Is4() || len(pr.DroppingASes) == 0 {
			continue
		}
		bh := &bgpblackholing.BlackholeState{
			Prefix:             pr.Prefix,
			DroppingASes:       pr.DroppingASes,
			DroppingIXPMembers: pr.DroppingIXPMembers,
		}
		ms = append(ms, sim.MeasureEvent(pr.User, pr.Prefix, bh, r, 4)...)
		n++
	}
	sample := bgpblackholing.Figure9ab(ms)
	ip := bgpblackholing.NewCDFInts(sample.IPDiffs)
	as := bgpblackholing.NewCDFInts(sample.ASDiffs)
	fmt.Printf("traceroute campaign: %d events, %d path triples\n", n, ip.Len())
	fmt.Printf("  IP-level:  mean shortening %.1f hops, %0.f%% of paths shorter during blackholing\n",
		ip.Mean(), 100*(1-ip.FractionAtOrBelow(0)))
	fmt.Printf("  AS-level:  mean shortening %.1f AS hops\n", as.Mean())

	// IPFIX week on the biggest blackholing IXP.
	var x *bgpblackholing.IXP
	for _, cand := range p.Topo.BlackholingIXPs() {
		if x == nil || len(cand.Members) > len(x.Members) {
			x = cand
		}
	}
	if x == nil {
		log.Fatal("no blackholing IXP in world")
	}
	var victims []bgpblackholing.VictimSpec
	seen := map[netip.Prefix]bool{}
	for _, pr := range res.LastDayResults {
		if drops, ok := pr.DroppingIXPMembers[x.ID]; ok && !seen[pr.Prefix] && len(victims) < 4 {
			seen[pr.Prefix] = true
			victims = append(victims, bgpblackholing.VictimSpec{Prefix: pr.Prefix, Honoring: drops})
		}
	}
	// One misconfigured victim: blackholed on the control plane only.
	victims = append(victims, bgpblackholing.VictimSpec{
		Prefix:           netip.MustParsePrefix("31.255.0.9/32"),
		ControlPlaneOnly: true,
	})

	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	series := bgpblackholing.SimulateIXPTraffic(x, victims, start, 7*24*time.Hour, bgpblackholing.DefaultIPFIXConfig())
	fmt.Printf("\nIPFIX week at %s (%d members):\n", x.Name, len(x.Members))
	for i, s := range series {
		kind := "blackholed"
		if victims[i].ControlPlaneOnly {
			kind = "misconfigured"
		}
		fmt.Printf("  %-18s [%s] drop fraction %.0f%%\n",
			victims[i].Prefix, kind, 100*bgpblackholing.DropFraction(s))
	}

	// Who keeps forwarding? (§10: 80% of leaked traffic from <10 members.)
	if len(victims) > 1 {
		top := bgpblackholing.TopForwarders(x, victims[0], bgpblackholing.DefaultIPFIXConfig())
		var total, top10 int64
		for i, c := range top {
			total += c.Bytes
			if i < 10 {
				top10 += c.Bytes
			}
		}
		if total > 0 {
			fmt.Printf("\nleaked traffic: top-10 of %d non-honouring members carry %.0f%%\n",
				len(top), 100*float64(top10)/float64(total))
			for i, c := range top {
				if i >= 3 {
					break
				}
				fmt.Printf("  AS%s\n", bgpblackholing.ASN(c.Member).String())
			}
		}
	}
}
